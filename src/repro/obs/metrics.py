"""Thread-safe metrics primitives with labels, a registry, and exporters.

The serving and runtime layers need the same three instrument kinds every
monitoring stack needs — monotonic :class:`Counter`\\ s, settable
:class:`Gauge`\\ s and :class:`Histogram`\\ s — addressable by name plus a
small set of label dimensions (``sensor``, ``stage``, ``recording``...).
A :class:`MetricsRegistry` owns the metric families of one process (or one
hub) and exports them two ways:

* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (version 0.0.4), what ``python -m repro.runtime
  --metrics FILE`` writes and what the serving protocol's ``metrics``
  command returns, so any Prometheus-compatible scraper can ingest it;
* :meth:`MetricsRegistry.to_dict` — a JSON-serialisable document for
  dashboards and tests.

Every child metric guards its state with its own lock; updates are a couple
of float operations, so contention is negligible next to the pipeline work
(the same trade-off :mod:`repro.serving.telemetry` has always made).
:func:`parse_prometheus_text` is the inverse of the text exporter — tests
and the CI obs-smoke job use it to assert a scraped exposition round-trips.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Metric and label names follow the Prometheus data-model grammar.
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds) — spans sub-millisecond stage times
#: to multi-second recording replays.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Samples retained per histogram child for window percentile queries.
DEFAULT_PERCENTILE_WINDOW = 4096


def _validate_metric_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME_RE.match(label):
            raise ValueError(f"invalid label name {label!r}")
        if label == "le":
            raise ValueError("label name 'le' is reserved for histogram buckets")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names}")
    return names


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects.

    Integers drop the trailing ``.0`` (``5`` not ``5.0``) so counters stay
    diff-friendly; infinities become ``+Inf``/``-Inf``.
    """
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


class _CounterValue:
    """One labelled counter sample (monotonic, non-negative increments)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters can only increase, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeValue:
    """One labelled gauge sample (set / inc / dec)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramValue:
    """One labelled histogram sample.

    Tracks the classic Prometheus cumulative-bucket counts plus lifetime
    ``sum``/``count``, and additionally retains the last ``window`` raw
    samples so percentile queries reflect *recent* behaviour (what a live
    latency dashboard wants) at bounded memory.
    """

    __slots__ = ("_lock", "_bounds", "_bucket_counts", "_count", "_sum", "_window")

    def __init__(self, bounds: Tuple[float, ...], window: int) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            self._bucket_counts[bisect_left(self._bounds, value)] += 1
            self._count += 1
            self._sum += value
            self._window.append(value)

    @property
    def count(self) -> int:
        """Samples observed over the lifetime (not just retained)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Lifetime sum of observed values."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Lifetime mean (0.0 before the first observation)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._sum / self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) over the retained window.

        Uses linear interpolation between closest ranks (NumPy's default
        ``np.percentile`` method).  An empty window returns ``0.0``; a
        single retained sample is every percentile of itself.
        """
        with self._lock:
            if not self._window:
                return 0.0
            samples = list(self._window)
        if len(samples) == 1:
            return float(samples[0])
        return float(np.percentile(np.asarray(samples), q))

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._bucket_counts)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip((*self._bounds, math.inf), counts):
            running += count
            cumulative.append((bound, running))
        return cumulative

    def raw_state(self) -> dict:
        """Raw (non-cumulative) serialisable state for cross-process merge."""
        with self._lock:
            return {
                "bucket_counts": list(self._bucket_counts),
                "count": self._count,
                "sum": self._sum,
                "window": list(self._window),
            }

    def merge_raw(self, state: dict) -> None:
        """Fold another sample's :meth:`raw_state` into this one.

        Bucket counts, lifetime count and sum add exactly; the percentile
        window concatenates (and re-truncates to its capacity), which is
        the best a bounded window can do — cross-process sample order is
        arbitrary anyway and percentiles are order-free.
        """
        counts = state["bucket_counts"]
        with self._lock:
            if len(counts) != len(self._bucket_counts):
                raise ValueError(
                    f"histogram state has {len(counts)} buckets, "
                    f"expected {len(self._bucket_counts)}"
                )
            for i, count in enumerate(counts):
                self._bucket_counts[i] += count
            self._count += state["count"]
            self._sum += state["sum"]
            self._window.extend(state["window"])


class _MetricFamily:
    """Common machinery: a named metric plus its labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_metric_name(name)
        self.help = help
        self.labelnames = _validate_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self) -> object:
        raise NotImplementedError

    def labels(self, **labelvalues: object):
        """The child metric for one combination of label values.

        Children are created lazily and cached, so holding on to the
        returned handle makes the hot-path update a couple of plain
        attribute operations.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _unlabelled(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} requires labels {self.labelnames}; "
                "address a child via .labels(...)"
            )
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in sorted label order."""
        with self._lock:
            return sorted(self._children.items())


class Counter(_MetricFamily):
    """A monotonically increasing metric family (events, batches, seconds)."""

    kind = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled sample (label-free families only)."""
        self._unlabelled().inc(amount)

    @property
    def value(self) -> float:
        """Value of the unlabelled sample (label-free families only)."""
        return self._unlabelled().value


class Gauge(_MetricFamily):
    """A settable metric family (queue depths, temperatures, flags)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self._unlabelled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabelled().dec(amount)

    @property
    def value(self) -> float:
        return self._unlabelled().value


class Histogram(_MetricFamily):
    """A distribution metric family (latencies, stage durations).

    Exposes Prometheus cumulative buckets for scraping plus windowed
    percentile queries for dashboards (see :class:`_HistogramValue`).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        window: int = DEFAULT_PERCENTILE_WINDOW,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        if window <= 0:
            raise ValueError(f"percentile window must be positive, got {window}")
        self.buckets = bounds
        self.window = window

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets, self.window)

    def observe(self, value: float) -> None:
        self._unlabelled().observe(value)

    def percentile(self, q: float) -> float:
        return self._unlabelled().percentile(q)

    @property
    def count(self) -> int:
        return self._unlabelled().count

    @property
    def sum(self) -> float:
        return self._unlabelled().sum


class MetricsRegistry:
    """The metric families of one process, hub or run.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same family (so independent modules can share
    e.g. ``repro_pipeline_stage_seconds_total``), while re-registering a
    name with a different kind or label set fails loudly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind}, not a {cls.kind}"
                    )
                if family.labelnames != _validate_labelnames(labelnames):
                    raise ValueError(
                        f"metric {name!r} is already registered with labels "
                        f"{family.labelnames}, not {tuple(labelnames)}"
                    )
                return family
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        window: int = DEFAULT_PERCENTILE_WINDOW,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets, window=window
        )

    def families(self) -> List[_MetricFamily]:
        """All registered families, sorted by name (export order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    # -- cross-process state -------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, JSON-serialisable snapshot of every family and child.

        This is the wire format process shards use to report their metrics:
        each worker process snapshots its registry, ships the plain dict
        over its result pipe, and the hub folds the shards into one view
        with :meth:`merge_state` — yielding a single exposition that spans
        process boundaries (scrape round-trip asserted in the obs tests).
        """
        out = []
        for family in self.families():
            entry: dict = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "children": [],
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                entry["window"] = family.window
            for values, child in family.children():
                if isinstance(child, _HistogramValue):
                    entry["children"].append(
                        {"labels": list(values), **child.raw_state()}
                    )
                else:
                    entry["children"].append(
                        {"labels": list(values), "value": child.value}
                    )
            out.append(entry)
        return {"families": out}

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`state_dict` snapshot into this registry.

        Families are get-or-created with the snapshot's kind/labels (the
        usual mismatch checks apply), then per child: counters **add**,
        gauges **set** (last writer wins — shard/sensor labels keep writers
        disjoint in practice), histograms merge bucket counts, totals and
        percentile windows.  Merging K disjoint snapshots into a fresh
        registry therefore reproduces exactly the exposition a single
        shared registry would have produced.
        """
        for entry in state["families"]:
            kind = entry["kind"]
            labelnames = tuple(entry["labelnames"])
            if kind == "counter":
                family = self.counter(entry["name"], entry["help"], labelnames)
            elif kind == "gauge":
                family = self.gauge(entry["name"], entry["help"], labelnames)
            elif kind == "histogram":
                family = self.histogram(
                    entry["name"],
                    entry["help"],
                    labelnames,
                    buckets=entry["buckets"],
                    window=entry["window"],
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r} in state")
            for child_state in entry["children"]:
                labels = dict(zip(labelnames, child_state["labels"]))
                child = family.labels(**labels)
                if kind == "counter":
                    child.inc(child_state["value"])
                elif kind == "gauge":
                    child.set(child_state["value"])
                else:
                    child.merge_raw(child_state)

    # -- exporters -----------------------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                labels = list(zip(family.labelnames, values))
                if isinstance(child, _HistogramValue):
                    for bound, count in child.bucket_counts():
                        bucket_labels = labels + [("le", format_value(bound))]
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_labels)} "
                            f"{count}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)} "
                        f"{format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)} "
                        f"{format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of every family and sample."""
        families = []
        for family in self.families():
            samples = []
            for values, child in family.children():
                labels = dict(zip(family.labelnames, values))
                if isinstance(child, _HistogramValue):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "mean": child.mean,
                            "p50": child.percentile(50),
                            "p95": child.percentile(95),
                            "p99": child.percentile(99),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"metrics": families}


# -- exposition parsing -----------------------------------------------------------------

#: One exposition sample line: name, optional {labels}, value (exponent ok).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf|NaN))"
    r"(?:\s+\d+)?$"  # optional timestamp
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text exposition back into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(label, value)`` pairs.  Raises
    :class:`ValueError` on any malformed line, which is exactly what the CI
    obs-smoke job wants: a scrape either parses completely or fails the
    build.  Comment (``#``) and blank lines are skipped.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_RE.match(stripped)
        if not match:
            raise ValueError(
                f"malformed exposition line {line_number}: {line!r}"
            )
        labels: List[Tuple[str, str]] = []
        raw_labels = match.group("labels")
        if raw_labels:
            position = 0
            while position < len(raw_labels):
                pair = _LABEL_PAIR_RE.match(raw_labels, position)
                if not pair:
                    raise ValueError(
                        f"malformed labels on line {line_number}: {line!r}"
                    )
                labels.append(
                    (pair.group("name"), _unescape_label_value(pair.group("value")))
                )
                position = pair.end()
        raw_value = match.group("value")
        if raw_value in ("Inf", "+Inf"):
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            value = float(raw_value)
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return samples


def sample_value(
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float],
    name: str,
    **labels: str,
) -> Optional[float]:
    """Convenience lookup into :func:`parse_prometheus_text` output."""
    return samples.get((name, tuple(sorted(labels.items()))))
