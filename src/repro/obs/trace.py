"""Lightweight tracer exporting Chrome trace-event JSON.

A :class:`Tracer` records complete spans (``ph: "X"`` duration events in
trace-event terms) into a bounded in-memory buffer and renders them as a
JSON document loadable straight into ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev).  That gives the pipeline a flame-graph view —
one lane per worker thread, one slice per stage per frame window — for the
cost of a ``time.perf_counter()`` pair and a dict append per span.

Design points:

* timestamps are microseconds relative to the tracer's construction, so
  traces from one process line up on a shared clock; :func:`merge_chrome_traces`
  re-bases nothing and instead separates sources by ``pid``;
* thread idents are mapped to small consecutive ``tid`` integers in
  first-seen order, keeping the JSON stable and compact;
* the buffer is bounded (default 200k events ≈ tens of MB of JSON); once
  full, new spans are counted as dropped rather than grown without limit —
  a tracer must never be the thing that OOMs the hub.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Default maximum buffered events before the tracer starts dropping.
DEFAULT_BUFFER_LIMIT = 200_000


class Tracer:
    """Collects Chrome trace-event duration spans for one process or hub."""

    def __init__(self, buffer_limit: int = DEFAULT_BUFFER_LIMIT, pid: int = 0) -> None:
        if buffer_limit <= 0:
            raise ValueError(f"buffer_limit must be positive, got {buffer_limit}")
        self.buffer_limit = buffer_limit
        self.pid = pid
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._dropped = 0
        self._tids: Dict[int, int] = {}
        self._epoch = time.perf_counter()

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch."""
        return (time.perf_counter() - self._epoch) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = len(self._tids)
            self._tids[ident] = tid
        return tid

    def record_span(
        self,
        name: str,
        start_us: float,
        duration_us: float,
        cat: str = "stage",
        args: Optional[dict] = None,
    ) -> None:
        """Append one complete span (``ph: "X"``) to the buffer."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_us,
            "dur": duration_us,
            "pid": self.pid,
            "tid": 0,
        }
        if args:
            event["args"] = args
        with self._lock:
            event["tid"] = self._tid()
            if len(self._events) >= self.buffer_limit:
                self._dropped += 1
                return
            self._events.append(event)

    @contextmanager
    def span(
        self, name: str, cat: str = "stage", args: Optional[dict] = None
    ) -> Iterator[None]:
        """Time the enclosed block as one span."""
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.record_span(
                name,
                start_us=(start - self._epoch) * 1e6,
                duration_us=(end - start) * 1e6,
                cat=cat,
                args=args,
            )

    def add_metadata(self, name: str, **args: object) -> None:
        """Append a metadata event (``ph: "M"``), e.g. ``process_name``."""
        with self._lock:
            self._events.append(
                {
                    "name": name,
                    "ph": "M",
                    "pid": self.pid,
                    "tid": self._tid(),
                    "args": dict(args),
                }
            )

    @property
    def dropped(self) -> int:
        """Spans discarded because the buffer was full."""
        with self._lock:
            return self._dropped

    def events(self) -> List[dict]:
        """A copy of the buffered trace events (chronological append order)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        """Drop all buffered events (the drop counter resets too)."""
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def chrome_trace(self, process_name: Optional[str] = None) -> dict:
        """The buffered spans as a Chrome trace-event JSON document."""
        events = self.events()
        if process_name is not None:
            events.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": 0,
                    "args": {"name": process_name},
                },
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_chrome_traces(tracks: Sequence[Tuple[str, Iterable[dict]]]) -> dict:
    """Merge several event streams into one trace, one ``pid`` per track.

    ``tracks`` is ``[(name, events), ...]`` — e.g. one entry per recording
    in a fleet run, or one per hub worker process.  Each track's events get
    a distinct ``pid`` plus a ``process_name`` metadata event so Perfetto
    shows them as separate named process groups.
    """
    merged: List[dict] = []
    for pid, (name, events) in enumerate(tracks):
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        for event in events:
            rebased = dict(event)
            rebased["pid"] = pid
            merged.append(rebased)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: dict) -> List[dict]:
    """Check a trace document's shape; returns its duration (``X``) events.

    Raises :class:`ValueError` on structural problems.  Used by tests and
    the CI obs-smoke job to assert an emitted trace is actually loadable.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be an array")
    spans: List[dict] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ValueError(f"traceEvents[{index}] missing field {field!r}")
        if event["ph"] == "X":
            for field in ("ts", "dur"):
                if not isinstance(event.get(field), (int, float)):
                    raise ValueError(
                        f"traceEvents[{index}] span missing numeric {field!r}"
                    )
            spans.append(event)
    return spans
