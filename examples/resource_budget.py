"""Resource and energy budget of an EBBIOT sensor node.

Reproduces the paper's system-level argument end to end: the per-stage
compute/memory models of Eq. (1)-(8), the Fig. 5 pipeline comparison, and
the duty-cycled energy budget of Fig. 2, including estimated battery life
for a small IoT battery — the "long battery life of the sensor node" the
paper says is critical for remote surveillance.

Run with::

    python examples/resource_budget.py
"""

from __future__ import annotations

from repro.evaluation.report import format_comparison_table
from repro.resources import (
    EbbiResourceModel,
    EbmsResourceModel,
    KalmanResourceModel,
    NnFilterResourceModel,
    OverlapTrackerResourceModel,
    ResourceParams,
    RpnResourceModel,
    relative_comparison,
)
from repro.resources.rpn_model import CnnDetectorReference
from repro.sensor.duty_cycle import DutyCycleModel


def main() -> None:
    params = ResourceParams.paper_defaults()

    print("Per-stage resources (Eq. (1)-(8), paper constants):")
    stage_models = [
        EbbiResourceModel(params),
        NnFilterResourceModel(params),
        RpnResourceModel(params),
        OverlapTrackerResourceModel(params),
        KalmanResourceModel(params),
        EbmsResourceModel(params),
    ]
    rows = [model.summary() for model in stage_models]
    print(
        format_comparison_table(
            rows, ["name", "computes_per_frame", "memory_kilobytes"]
        )
    )

    print("\nWhole-pipeline comparison (Fig. 5, relative to EBBIOT):")
    print(
        format_comparison_table(
            relative_comparison(params),
            [
                "pipeline",
                "computes_per_frame",
                "memory_kilobytes",
                "computes_relative",
                "memory_relative",
            ],
        )
    )

    rpn = RpnResourceModel(params)
    cnn = CnnDetectorReference()
    print(
        f"\nFrame-based reference (YOLO-class detector): "
        f"{cnn.compute_ratio_vs_rpn(rpn):,.0f}X the computes and "
        f"{cnn.memory_ratio_vs_rpn(rpn):,.0f}X the memory of the histogram RPN "
        f"(the paper's '> 1000X' claim)."
    )

    print("\nDuty-cycled node energy (Fig. 2 scheme, Cortex-M class processor):")
    duty = DutyCycleModel(frame_duration_us=66_000)
    print(
        f"  frame rate            : {duty.frame_rate_hz:.1f} Hz\n"
        f"  processor duty cycle  : {duty.duty_cycle * 100:.1f} %\n"
        f"  average power         : {duty.average_power_mw():.3f} mW "
        f"(vs {duty.always_on_power_mw():.1f} mW always-on, "
        f"{duty.power_saving_factor():.1f}X saving)\n"
        f"  battery life @ 10 Wh  : {duty.battery_life_days():.0f} days"
    )

    print("\nSensitivity to the frame duration tF:")
    print(
        format_comparison_table(
            duty.compare_frame_durations([16_000, 33_000, 66_000, 132_000]),
            [
                "frame_duration_us",
                "frame_rate_hz",
                "duty_cycle",
                "average_power_mw",
                "power_saving_factor",
            ],
        )
    )


if __name__ == "__main__":
    main()
