"""Occlusion handling demo: two vehicles crossing paths.

Builds a hand-crafted scene in which two vehicles in adjacent lanes drive
towards each other and dynamically occlude, then runs the overlap tracker
with and without its prediction-based occlusion handling (occlusion
look-ahead n = 2 vs n = 0) and reports how many distinct tracks each
configuration needed and whether the two vehicles kept separate identities
through the crossing — the behaviour Section II-C's step 5 is designed for.

Run with::

    python examples/occlusion_handling.py
"""

from __future__ import annotations

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.evaluation import compute_mot_summary, evaluate_recording
from repro.events.noise import BackgroundActivityNoise
from repro.sensor.davis import SensorGeometry
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.trajectories import crossing_trajectory


def build_crossing_scene() -> Scene:
    """Two vehicles in nearby lanes moving in opposite directions."""
    geometry = SensorGeometry()
    config = SceneConfig(
        geometry=geometry,
        noise=BackgroundActivityNoise(rate_hz_per_pixel=0.3),
        seed=17,
    )
    scene = Scene(config)
    car = OBJECT_TEMPLATES[ObjectClass.CAR]
    van = OBJECT_TEMPLATES[ObjectClass.VAN]
    # Lanes only 12 px apart vertically: the boxes overlap while crossing.
    scene.add_object(
        SceneObject(0, car, crossing_trajectory(geometry.width, 62, 65.0, 0, car.width_px, 1))
    )
    scene.add_object(
        SceneObject(1, van, crossing_trajectory(geometry.width, 74, 55.0, 0, van.width_px, -1))
    )
    return scene


def run_variant(stream, ground_truth, lookahead_frames: int):
    """Run the pipeline with a given occlusion look-ahead and summarise."""
    config = EbbiotConfig(occlusion_lookahead_frames=lookahead_frames)
    pipeline = EbbiotPipeline(config)
    result = pipeline.process_stream(stream)
    evaluation = evaluate_recording(
        result.track_history.observations, ground_truth, iou_thresholds=(0.3,)
    )
    mot = compute_mot_summary(result.track_history.observations, ground_truth)
    return {
        "lookahead": lookahead_frames,
        "distinct_tracks": len(result.track_history.track_ids()),
        "occlusions_detected": pipeline.tracker.occlusions_detected,
        "merges": pipeline.tracker.merges_performed,
        "precision@0.3": evaluation.by_threshold[0.3].precision,
        "recall@0.3": evaluation.by_threshold[0.3].recall,
        "id_switches": mot.num_id_switches,
        "mota": mot.mota,
    }


def main() -> None:
    print("Rendering the crossing-vehicles scene (5 s) ...")
    scene = build_crossing_scene()
    rendered = scene.render(duration_us=5_000_000)
    print(
        f"  {rendered.num_events} events, "
        f"{rendered.num_ground_truth_tracks()} ground-truth tracks"
    )

    print("\nOverlap tracker with and without occlusion look-ahead:")
    header = (
        f"{'n':>3} {'tracks':>7} {'occl.':>6} {'merges':>7} "
        f"{'prec@0.3':>9} {'rec@0.3':>8} {'IDsw':>5} {'MOTA':>6}"
    )
    print(header)
    print("-" * len(header))
    for lookahead in (2, 0):
        row = run_variant(rendered.stream, rendered.ground_truth, lookahead)
        print(
            f"{row['lookahead']:>3} {row['distinct_tracks']:>7} "
            f"{row['occlusions_detected']:>6} {row['merges']:>7} "
            f"{row['precision@0.3']:>9.3f} {row['recall@0.3']:>8.3f} "
            f"{row['id_switches']:>5} {row['mota']:>6.3f}"
        )

    print(
        "\nWith look-ahead (n = 2) the two vehicles coast on their predictions "
        "through the crossing and keep separate identities; with n = 0 the "
        "shared proposal is treated as fragmentation and the tracks merge."
    )


if __name__ == "__main__":
    main()
