"""Traffic surveillance at two sites: the paper's main use case.

Builds both Table-I-like recordings (busy ENG with a foliage distractor and
a region of exclusion, quiet LT4), runs EBBIOT and the two baselines on
each, and prints the weighted Fig. 4-style comparison plus a per-site
breakdown — the workload the paper's introduction motivates (low-power
IoVT surveillance nodes watching a junction).

Run with::

    python examples/traffic_surveillance.py [duration_seconds]
"""

from __future__ import annotations

import sys

from repro.core import EbbiBuilder, EbbiotConfig, EbbiotPipeline, HistogramRegionProposer
from repro.core.roe import RegionOfExclusion
from repro.datasets import ENG_LIKE_SPEC, LT4_LIKE_SPEC, build_recording
from repro.evaluation import evaluate_recording, sweep_iou_thresholds
from repro.evaluation.report import format_precision_recall_table
from repro.events.filters import NearestNeighbourFilter
from repro.trackers import EbmsTracker, KalmanFilterTracker

IOU_THRESHOLDS = (0.1, 0.3, 0.5)


def run_ebbiot(recording, config):
    """EBBIOT: EBBI + histogram RPN (+ ROE) + overlap tracker."""
    pipeline = EbbiotPipeline(EbbiotConfig(roe_boxes=recording.roe_boxes()))
    return pipeline.process_stream(recording.stream).track_history.observations


def run_ebbi_kf(recording, config):
    """Baseline 1: same EBBI + RPN front end, Kalman-filter tracker."""
    builder = EbbiBuilder(config.width, config.height, config.median_patch_size)
    proposer = HistogramRegionProposer(config.downsample_x, config.downsample_y)
    roe = RegionOfExclusion(boxes=recording.roe_boxes())
    tracker = KalmanFilterTracker()
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        ebbi = builder.build(events, t_start, t_end)
        proposals = roe.filter_proposals(proposer.propose(ebbi.filtered))
        observations.extend(tracker.process_frame(proposals, ebbi.t_mid_us))
    return observations


def run_nnfilt_ebms(recording, config):
    """Baseline 2: fully event-driven NN-filter + mean-shift clusters."""
    nn_filter = NearestNeighbourFilter(config.width, config.height)
    tracker = EbmsTracker()
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        filtered = nn_filter.filter(events)
        observations.extend(tracker.process_frame(filtered, (t_start + t_end) // 2))
    return observations


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    print(f"Simulating both recording sites ({duration_s:.0f} s each) ...")
    recordings = [
        build_recording(ENG_LIKE_SPEC, duration_override_s=duration_s),
        build_recording(LT4_LIKE_SPEC, duration_override_s=duration_s),
    ]
    for recording in recordings:
        print(
            f"  {recording.name}: {recording.stream.num_events} events, "
            f"{recording.annotations.num_tracks()} ground-truth tracks, "
            f"{len(recording.roe_boxes())} ROE box(es)"
        )

    config = EbbiotConfig()
    trackers = {
        "EBBIOT": run_ebbiot,
        "EBBI+KF": run_ebbi_kf,
        "NNfilt+EBMS": run_nnfilt_ebms,
    }

    combined = {}
    for name, runner in trackers.items():
        print(f"\nRunning {name} ...")
        evaluations = []
        for recording in recordings:
            observations = runner(recording, config)
            evaluation = evaluate_recording(
                observations,
                recording.annotations.frames,
                iou_thresholds=IOU_THRESHOLDS,
                name=recording.name,
            )
            evaluations.append(evaluation)
            at_03 = evaluation.by_threshold[0.3]
            print(
                f"  {recording.name}: precision@0.3 = {at_03.precision:.3f}, "
                f"recall@0.3 = {at_03.recall:.3f} "
                f"({len(observations)} track boxes)"
            )
        combined[name] = sweep_iou_thresholds(evaluations)

    print("\nWeighted across recordings (weights = ground-truth track counts):")
    print(format_precision_recall_table(combined))


if __name__ == "__main__":
    main()
