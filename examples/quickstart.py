"""Quickstart: simulate a short traffic recording, run EBBIOT, evaluate it.

Run with::

    python examples/quickstart.py

This exercises the whole public API in under a minute: build an LT4-like
synthetic recording, run the EBBIOT pipeline with the paper's default
parameters, print the tracking results and the IoU-swept precision/recall,
compare the overlap tracker against the paper's EBBI+KF baseline through
the tracker-backend registry (``EbbiotConfig(tracker="kalman")``), and show
the analytic resource budget of the pipeline.
"""

from __future__ import annotations

from repro import EbbiotConfig, EbbiotPipeline
from repro.datasets import LT4_LIKE_SPEC, build_recording
from repro.evaluation import evaluate_recording
from repro.resources import ebbiot_pipeline_resources


def main() -> None:
    # 1. Build a 15-second synthetic recording at the quiet (LT4-like) site.
    print("Building a 15 s LT4-like synthetic recording ...")
    recording = build_recording(LT4_LIKE_SPEC, duration_override_s=15.0)
    stream = recording.stream
    print(
        f"  {stream.num_events} events over {stream.duration_s:.1f} s "
        f"({stream.mean_event_rate / 1e3:.1f} kev/s), "
        f"{recording.annotations.num_tracks()} ground-truth tracks"
    )

    # 2. Run the EBBIOT pipeline with the paper's default configuration
    #    (tF = 66 ms, p = 3, s1 = 6, s2 = 3, NT = 8).
    config = EbbiotConfig(roe_boxes=recording.roe_boxes())
    pipeline = EbbiotPipeline(config)
    result = pipeline.process_stream(stream)
    print(
        f"\nProcessed {result.num_frames} frames at {config.frame_rate_hz:.1f} Hz: "
        f"{result.total_proposals()} region proposals, "
        f"{result.total_track_observations()} track boxes, "
        f"{len(result.track_history.track_ids())} distinct tracks"
    )
    print(
        f"  mean active-pixel fraction alpha = {result.mean_active_pixel_fraction:.4f}, "
        f"mean events/frame n = {result.mean_events_per_frame:.0f}, "
        f"mean active trackers NT = {result.mean_active_trackers:.2f}"
    )

    # 3. Evaluate against the simulator's ground truth (Section III-B metric).
    evaluation = evaluate_recording(
        result.track_history.observations, recording.annotations.frames
    )
    print("\nPrecision / recall vs IoU threshold:")
    for threshold in evaluation.thresholds():
        metrics = evaluation.by_threshold[threshold]
        print(
            f"  IoU > {threshold:.1f}:  precision = {metrics.precision:.3f}  "
            f"recall = {metrics.recall:.3f}  (TP = {metrics.true_positives})"
        )

    # 4. Swap the tracker backend with one config field: the same pipeline,
    #    stream and evaluation, but the paper's EBBI+KF comparison tracker.
    kalman_config = EbbiotConfig(tracker="kalman", roe_boxes=recording.roe_boxes())
    kalman_result = EbbiotPipeline(kalman_config).process_stream(stream)
    kalman_evaluation = evaluate_recording(
        kalman_result.track_history.observations, recording.annotations.frames
    )
    print("\nBackend comparison at IoU > 0.3 (one pipeline, two trackers):")
    for label, run in (("overlap", evaluation), ("kalman", kalman_evaluation)):
        metrics = run.by_threshold[0.3]
        print(
            f"  tracker={label:<8} precision = {metrics.precision:.3f}  "
            f"recall = {metrics.recall:.3f}"
        )

    # 5. The analytic resource budget of what just ran (Eq. (1), (5), (6)).
    resources = ebbiot_pipeline_resources()
    print(
        f"\nAnalytic resource budget (paper constants): "
        f"{resources.computes_per_frame / 1e3:.1f} kops/frame, "
        f"{resources.memory_kilobytes:.1f} kB"
    )
    for stage, parts in resources.breakdown.items():
        print(
            f"  {stage:16s} {parts['computes_per_frame'] / 1e3:8.1f} kops/frame, "
            f"{parts['memory_bits'] / 8192:6.2f} kB"
        )


if __name__ == "__main__":
    main()
