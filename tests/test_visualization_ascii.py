"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.precision_recall import PrecisionRecall
from repro.trackers.base import TrackObservation
from repro.utils.geometry import BoundingBox
from repro.visualization import (
    render_frame_ascii,
    render_histogram_ascii,
    render_precision_recall_curves,
    render_track_trajectories,
)


class TestRenderFrame:
    def test_active_pixels_marked(self):
        frame = np.zeros((18, 24), dtype=np.uint8)
        frame[9, 12] = 1
        art = render_frame_ascii(frame, max_width=24, max_height=18)
        assert "#" in art
        assert art.count("\n") == 17

    def test_box_overlay_characters(self):
        frame = np.zeros((18, 24), dtype=np.uint8)
        frame[8:12, 10:14] = 1
        art = render_frame_ascii(
            frame, boxes=[BoundingBox(9, 7, 6, 6)], max_width=24, max_height=18
        )
        assert "@" in art  # active pixel inside the box
        assert "+" in art or "#" in art

    def test_downsampling_bounds_output_size(self):
        frame = np.zeros((180, 240), dtype=np.uint8)
        art = render_frame_ascii(frame, max_width=60, max_height=30)
        lines = art.split("\n")
        assert len(lines) <= 31
        assert all(len(line) <= 61 for line in lines)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            render_frame_ascii(np.zeros(5))
        with pytest.raises(ValueError):
            render_frame_ascii(np.zeros((5, 5)), max_width=1)


class TestRenderHistogram:
    def test_bars_scale_with_values(self):
        histogram = np.array([0, 1, 2, 4])
        art = render_histogram_ascii(histogram, height=4, label="H_X")
        lines = art.split("\n")
        assert lines[0].startswith("H_X")
        # The tallest bin has bars on every level, the zero bin on none.
        top_row = lines[1]
        assert top_row[3] == "|"
        assert all(row[0] == " " for row in lines[1:-1])

    def test_empty_histogram(self):
        art = render_histogram_ascii(np.zeros(5), height=3)
        assert "empty" in art

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            render_histogram_ascii(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            render_histogram_ascii(np.zeros(3), height=0)


class TestRenderCurves:
    def _results(self):
        return {
            "EBBIOT": {0.3: PrecisionRecall(0.9, 0.8, 9, 10, 10), 0.5: PrecisionRecall(0.6, 0.5, 6, 10, 10)},
            "EBMS": {0.3: PrecisionRecall(0.2, 0.4, 2, 10, 10), 0.5: PrecisionRecall(0.1, 0.2, 1, 10, 10)},
        }

    def test_contains_trackers_and_bars(self):
        art = render_precision_recall_curves(self._results(), metric="precision", width=20)
        assert "EBBIOT" in art and "EBMS" in art
        assert "#" * 18 in art  # 0.9 * 20 = 18 chars
        assert "IoU>0.3" in art and "IoU>0.5" in art

    def test_recall_metric(self):
        art = render_precision_recall_curves(self._results(), metric="recall")
        assert "recall" in art

    def test_invalid_metric_and_empty(self):
        with pytest.raises(ValueError):
            render_precision_recall_curves(self._results(), metric="f1")
        assert render_precision_recall_curves({}) == "(no results)"


class TestRenderTrajectories:
    def test_two_tracks_use_distinct_symbols(self):
        observations = [
            TrackObservation(1, BoundingBox(10 + 10 * i, 60, 20, 20), i * 66_000)
            for i in range(5)
        ] + [
            TrackObservation(2, BoundingBox(200 - 10 * i, 120, 20, 20), i * 66_000)
            for i in range(5)
        ]
        art = render_track_trajectories(observations)
        assert "0" in art and "1" in art
        assert "track 1" in art and "track 2" in art

    def test_empty_observations(self):
        art = render_track_trajectories([])
        assert "track" not in art

    def test_invalid_canvas(self):
        with pytest.raises(ValueError):
            render_track_trajectories([], max_width=1)
