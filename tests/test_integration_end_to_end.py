"""End-to-end integration tests: simulate, track with all three pipelines,
evaluate, and check the paper's qualitative claims on a small recording."""

from __future__ import annotations

import pytest

from repro.core import EbbiBuilder, EbbiotConfig, EbbiotPipeline, HistogramRegionProposer
from repro.datasets import LT4_LIKE_SPEC, build_recording
from repro.evaluation import compute_mot_summary, evaluate_recording
from repro.events.filters import NearestNeighbourFilter
from repro.trackers import EbmsTracker, KalmanFilterTracker


@pytest.fixture(scope="module")
def recording():
    """One 12-second LT4-like recording shared by the integration tests."""
    return build_recording(LT4_LIKE_SPEC, duration_override_s=12.0)


@pytest.fixture(scope="module")
def ebbiot_result(recording):
    pipeline = EbbiotPipeline(EbbiotConfig())
    return pipeline.process_stream(recording.stream)


def _run_kalman_baseline(recording, config):
    builder = EbbiBuilder(config.width, config.height, config.median_patch_size)
    proposer = HistogramRegionProposer(
        downsample_x=config.downsample_x,
        downsample_y=config.downsample_y,
        threshold=config.histogram_threshold,
    )
    tracker = KalmanFilterTracker()
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        frames = builder.build(events, t_start, t_end)
        proposals = proposer.propose(frames.filtered)
        observations.extend(tracker.process_frame(proposals, frames.t_mid_us))
    return observations


def _run_ebms_baseline(recording, config):
    nn_filter = NearestNeighbourFilter(config.width, config.height)
    tracker = EbmsTracker()
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        filtered = nn_filter.filter(events)
        observations.extend(tracker.process_frame(filtered, (t_start + t_end) // 2))
    return observations


class TestEbbiotEndToEnd:
    def test_reasonable_precision_and_recall(self, recording, ebbiot_result):
        evaluation = evaluate_recording(
            ebbiot_result.track_history.observations,
            recording.annotations.frames,
            iou_thresholds=(0.3,),
        )
        result = evaluation.by_threshold[0.3]
        assert result.precision > 0.6
        assert result.recall > 0.6

    def test_pipeline_statistics_in_expected_ranges(self, ebbiot_result):
        # Objects occupy well under 10 % of the image on average.
        assert ebbiot_result.mean_active_pixel_fraction < 0.1
        # A quiet site: zero to a few simultaneous trackers.
        assert ebbiot_result.mean_active_trackers < 4

    def test_mot_summary_computable(self, recording, ebbiot_result):
        summary = compute_mot_summary(
            ebbiot_result.track_history.observations, recording.annotations.frames
        )
        assert summary.num_ground_truth_boxes > 0
        assert -2.0 <= summary.mota <= 1.0


class TestCrossTrackerComparison:
    def test_ebbiot_beats_ebms_in_precision(self, recording, ebbiot_result):
        """The headline qualitative result of Fig. 4: EBBIOT is more precise
        than the fully event-driven EBMS pipeline."""
        config = EbbiotConfig()
        ebms_observations = _run_ebms_baseline(recording, config)
        ebbiot_eval = evaluate_recording(
            ebbiot_result.track_history.observations,
            recording.annotations.frames,
            iou_thresholds=(0.3,),
        )
        ebms_eval = evaluate_recording(
            ebms_observations, recording.annotations.frames, iou_thresholds=(0.3,)
        )
        assert (
            ebbiot_eval.by_threshold[0.3].precision
            > ebms_eval.by_threshold[0.3].precision
        )

    def test_ebbiot_at_least_as_precise_as_kalman(self, recording, ebbiot_result):
        config = EbbiotConfig()
        kalman_observations = _run_kalman_baseline(recording, config)
        ebbiot_eval = evaluate_recording(
            ebbiot_result.track_history.observations,
            recording.annotations.frames,
            iou_thresholds=(0.3,),
        )
        kalman_eval = evaluate_recording(
            kalman_observations, recording.annotations.frames, iou_thresholds=(0.3,)
        )
        assert (
            ebbiot_eval.by_threshold[0.3].precision
            >= kalman_eval.by_threshold[0.3].precision - 0.05
        )

    def test_all_trackers_produce_output(self, recording):
        config = EbbiotConfig()
        assert len(_run_kalman_baseline(recording, config)) > 0
        assert len(_run_ebms_baseline(recording, config)) > 0
