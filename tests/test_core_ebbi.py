"""Tests for EBBI frame generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ebbi import EbbiBuilder, events_to_binary_frame
from repro.events.types import make_packet


class TestEventsToBinaryFrame:
    def test_single_event(self):
        frame = events_to_binary_frame(make_packet([3], [7], [0], [1]), 240, 180)
        assert frame.shape == (180, 240)
        assert frame[7, 3] == 1
        assert frame.sum() == 1

    def test_polarity_ignored(self):
        events = make_packet([3, 3], [7, 7], [0, 1], [1, -1])
        frame = events_to_binary_frame(events, 240, 180)
        assert frame.sum() == 1

    def test_repeated_events_latch_once(self):
        events = make_packet([5] * 10, [5] * 10, list(range(10)), [1] * 10)
        assert events_to_binary_frame(events, 240, 180).sum() == 1

    def test_empty_packet(self):
        frame = events_to_binary_frame(make_packet([], [], [], []), 240, 180)
        assert frame.sum() == 0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            events_to_binary_frame(make_packet([240], [0], [0], [1]), 240, 180)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            events_to_binary_frame(np.zeros(3), 240, 180)


class TestEbbiBuilder:
    def test_build_returns_raw_and_filtered(self):
        builder = EbbiBuilder(240, 180, median_patch_size=3)
        # One dense blob plus one isolated noise pixel.
        xs = [50 + i % 6 for i in range(36)] + [200]
        ys = [60 + i // 6 for i in range(36)] + [20]
        events = make_packet(xs, ys, list(range(37)), [1] * 37)
        frames = builder.build(events, 0, 66_000)
        assert frames.raw[20, 200] == 1
        assert frames.filtered[20, 200] == 0  # isolated pixel filtered out
        assert frames.filtered[62, 52] == 1  # blob survives
        assert frames.num_events == 37
        assert frames.t_mid_us == 33_000

    def test_filtering_disabled(self):
        builder = EbbiBuilder(240, 180, median_patch_size=0)
        events = make_packet([10], [10], [0], [1])
        frames = builder.build(events, 0, 66_000)
        np.testing.assert_array_equal(frames.raw, frames.filtered)

    def test_even_patch_rejected(self):
        with pytest.raises(ValueError):
            EbbiBuilder(240, 180, median_patch_size=4)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            EbbiBuilder(0, 180)

    def test_statistics_accumulate(self):
        builder = EbbiBuilder(240, 180)
        builder.build(make_packet([1], [1], [0], [1]), 0, 66_000)
        builder.build(make_packet([], [], [], []), 66_000, 132_000)
        assert builder.frames_built == 2
        assert builder.mean_active_pixel_fraction == pytest.approx(
            0.5 * (1 / 43_200), rel=1e-6
        )

    def test_memory_bits_matches_eq1(self):
        assert EbbiBuilder(240, 180).memory_bits() == 2 * 240 * 180

    def test_active_pixel_fraction_property(self):
        builder = EbbiBuilder(240, 180)
        events = make_packet([1, 2, 3], [1, 2, 3], [0, 1, 2], [1, 1, 1])
        frames = builder.build(events, 0, 66_000)
        assert frames.active_pixel_count == 3
        assert frames.active_pixel_fraction == pytest.approx(3 / 43_200)

    def test_mean_fraction_zero_before_any_frames(self):
        assert EbbiBuilder(240, 180).mean_active_pixel_fraction == 0.0


class TestEventsToBinaryFrameBatch:
    def _random_packet(self, num_events, duration, seed, width=240, height=180):
        rng = np.random.default_rng(seed)
        ts = np.sort(rng.integers(0, duration, size=num_events))
        return make_packet(
            rng.integers(0, width, size=num_events),
            rng.integers(0, height, size=num_events),
            ts,
            np.where(rng.random(num_events) < 0.5, 1, -1),
        )

    def test_batch_matches_per_frame_accumulation(self):
        from repro.core.ebbi import events_to_binary_frame_batch
        from repro.events.stream import frame_boundaries

        packet = self._random_packet(500, 1_000_000, seed=7)
        edges, splits = frame_boundaries(packet["t"], 66_000, 0, 1_000_000)
        stack = events_to_binary_frame_batch(packet, splits, 240, 180)
        assert stack.shape == (len(edges) - 1, 180, 240)
        for i in range(len(edges) - 1):
            expected = events_to_binary_frame(
                packet[splits[i] : splits[i + 1]], 240, 180
            )
            np.testing.assert_array_equal(stack[i], expected)

    def test_batch_with_empty_windows(self):
        from repro.core.ebbi import events_to_binary_frame_batch

        packet = make_packet([1, 2], [1, 2], [0, 500_000], [1, 1])
        splits = np.array([0, 1, 1, 1, 2])
        stack = events_to_binary_frame_batch(packet, splits, 240, 180)
        assert stack[0].sum() == 1
        assert stack[1].sum() == 0
        assert stack[2].sum() == 0
        assert stack[3].sum() == 1

    def test_batch_empty_packet(self):
        from repro.core.ebbi import events_to_binary_frame_batch

        stack = events_to_binary_frame_batch(
            make_packet([], [], [], []), np.array([0, 0, 0]), 240, 180
        )
        assert stack.shape == (2, 180, 240)
        assert stack.sum() == 0

    def test_batch_out_of_bounds_rejected(self):
        from repro.core.ebbi import events_to_binary_frame_batch

        with pytest.raises(ValueError):
            events_to_binary_frame_batch(
                make_packet([240], [0], [0], [1]), np.array([0, 1]), 240, 180
            )

    def test_batch_wrong_dtype_rejected(self):
        from repro.core.ebbi import events_to_binary_frame_batch

        with pytest.raises(TypeError):
            events_to_binary_frame_batch(np.zeros(3), np.array([0, 3]), 240, 180)


class TestEbbiBuilderBatch:
    def test_build_batch_matches_sequential_builds(self):
        from repro.events.stream import frame_boundaries

        rng = np.random.default_rng(11)
        num_events = 400
        ts = np.sort(rng.integers(0, 500_000, size=num_events))
        packet = make_packet(
            rng.integers(0, 240, size=num_events),
            rng.integers(0, 180, size=num_events),
            ts,
            np.ones(num_events, dtype=int),
        )
        edges, splits = frame_boundaries(packet["t"], 66_000, 0, 500_000)

        sequential = EbbiBuilder(240, 180, median_patch_size=3)
        expected = [
            sequential.build(
                packet[splits[i] : splits[i + 1]], int(edges[i]), int(edges[i + 1])
            )
            for i in range(len(edges) - 1)
        ]

        batched = EbbiBuilder(240, 180, median_patch_size=3)
        got = batched.build_batch(packet, edges[:-1], edges[1:], splits)

        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g.raw, e.raw)
            np.testing.assert_array_equal(g.filtered, e.filtered)
            assert g.t_start_us == e.t_start_us
            assert g.t_end_us == e.t_end_us
            assert g.num_events == e.num_events
        assert batched.frames_built == sequential.frames_built
        assert batched.mean_active_pixel_fraction == pytest.approx(
            sequential.mean_active_pixel_fraction
        )

    def test_build_batch_disabled_median_filter(self):
        builder = EbbiBuilder(32, 32, median_patch_size=0)
        packet = make_packet([3, 4], [5, 6], [0, 10], [1, 1])
        frames = builder.build_batch(
            packet, np.array([0]), np.array([100]), np.array([0, 2])
        )
        np.testing.assert_array_equal(frames[0].raw, frames[0].filtered)

    def test_build_batch_shape_mismatch_rejected(self):
        builder = EbbiBuilder(32, 32)
        packet = make_packet([1], [1], [0], [1])
        with pytest.raises(ValueError):
            builder.build_batch(packet, np.array([0]), np.array([100]), np.array([0]))


class TestEbbiFramesDetached:
    def test_batch_frames_detach_to_owned_arrays(self):
        builder = EbbiBuilder(32, 32)
        packet = make_packet([1, 2], [1, 2], [0, 10], [1, 1])
        frames = builder.build_batch(
            packet, np.array([0]), np.array([100]), np.array([0, 2])
        )
        assert frames[0].raw.base is not None  # view into the chunk stack
        detached = frames[0].detached()
        assert detached.raw.base is None
        assert detached.filtered.base is None
        np.testing.assert_array_equal(detached.raw, frames[0].raw)

    def test_owned_frames_detach_to_self(self):
        from repro.core.ebbi import EbbiFrames

        frame = EbbiFrames(
            raw=np.zeros((32, 32), dtype=np.uint8),
            filtered=np.zeros((32, 32), dtype=np.uint8),
            t_start_us=0,
            t_end_us=100,
            num_events=0,
        )
        assert frame.detached() is frame
