"""Tests for EBBI frame generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ebbi import EbbiBuilder, events_to_binary_frame
from repro.events.types import make_packet


class TestEventsToBinaryFrame:
    def test_single_event(self):
        frame = events_to_binary_frame(make_packet([3], [7], [0], [1]), 240, 180)
        assert frame.shape == (180, 240)
        assert frame[7, 3] == 1
        assert frame.sum() == 1

    def test_polarity_ignored(self):
        events = make_packet([3, 3], [7, 7], [0, 1], [1, -1])
        frame = events_to_binary_frame(events, 240, 180)
        assert frame.sum() == 1

    def test_repeated_events_latch_once(self):
        events = make_packet([5] * 10, [5] * 10, list(range(10)), [1] * 10)
        assert events_to_binary_frame(events, 240, 180).sum() == 1

    def test_empty_packet(self):
        frame = events_to_binary_frame(make_packet([], [], [], []), 240, 180)
        assert frame.sum() == 0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            events_to_binary_frame(make_packet([240], [0], [0], [1]), 240, 180)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            events_to_binary_frame(np.zeros(3), 240, 180)


class TestEbbiBuilder:
    def test_build_returns_raw_and_filtered(self):
        builder = EbbiBuilder(240, 180, median_patch_size=3)
        # One dense blob plus one isolated noise pixel.
        xs = [50 + i % 6 for i in range(36)] + [200]
        ys = [60 + i // 6 for i in range(36)] + [20]
        events = make_packet(xs, ys, list(range(37)), [1] * 37)
        frames = builder.build(events, 0, 66_000)
        assert frames.raw[20, 200] == 1
        assert frames.filtered[20, 200] == 0  # isolated pixel filtered out
        assert frames.filtered[62, 52] == 1  # blob survives
        assert frames.num_events == 37
        assert frames.t_mid_us == 33_000

    def test_filtering_disabled(self):
        builder = EbbiBuilder(240, 180, median_patch_size=0)
        events = make_packet([10], [10], [0], [1])
        frames = builder.build(events, 0, 66_000)
        np.testing.assert_array_equal(frames.raw, frames.filtered)

    def test_even_patch_rejected(self):
        with pytest.raises(ValueError):
            EbbiBuilder(240, 180, median_patch_size=4)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            EbbiBuilder(0, 180)

    def test_statistics_accumulate(self):
        builder = EbbiBuilder(240, 180)
        builder.build(make_packet([1], [1], [0], [1]), 0, 66_000)
        builder.build(make_packet([], [], [], []), 66_000, 132_000)
        assert builder.frames_built == 2
        assert builder.mean_active_pixel_fraction == pytest.approx(
            0.5 * (1 / 43_200), rel=1e-6
        )

    def test_memory_bits_matches_eq1(self):
        assert EbbiBuilder(240, 180).memory_bits() == 2 * 240 * 180

    def test_active_pixel_fraction_property(self):
        builder = EbbiBuilder(240, 180)
        events = make_packet([1, 2, 3], [1, 2, 3], [0, 1, 2], [1, 1, 1])
        frames = builder.build(events, 0, 66_000)
        assert frames.active_pixel_count == 3
        assert frames.active_pixel_fraction == pytest.approx(3 / 43_200)

    def test_mean_fraction_zero_before_any_frames(self):
        assert EbbiBuilder(240, 180).mean_active_pixel_fraction == 0.0
