"""Tests for precision/recall evaluation and weighted aggregation."""

from __future__ import annotations

import pytest

from repro.evaluation.precision_recall import (
    PrecisionRecall,
    evaluate_recording,
    sweep_iou_thresholds,
    weighted_average,
)
from repro.simulation.ground_truth import GroundTruthBox, GroundTruthFrame
from repro.trackers.base import TrackObservation
from repro.utils.geometry import BoundingBox


def gt_frame(t_us, boxes):
    return GroundTruthFrame(
        t_us=t_us,
        boxes=[
            GroundTruthBox(track_id=i, object_class="car", box=b)
            for i, b in enumerate(boxes)
        ],
    )


def observation(t_us, box, track_id=1):
    return TrackObservation(track_id=track_id, box=box, t_us=t_us)


class TestEvaluateRecording:
    def test_perfect_tracker(self):
        ground_truth = [
            gt_frame(33_000, [BoundingBox(10, 10, 20, 20)]),
            gt_frame(99_000, [BoundingBox(14, 10, 20, 20)]),
        ]
        observations = [
            observation(33_000, BoundingBox(10, 10, 20, 20)),
            observation(99_000, BoundingBox(14, 10, 20, 20)),
        ]
        evaluation = evaluate_recording(observations, ground_truth, iou_thresholds=(0.5,))
        result = evaluation.by_threshold[0.5]
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_no_tracker_output(self):
        ground_truth = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        evaluation = evaluate_recording([], ground_truth, iou_thresholds=(0.5,))
        result = evaluation.by_threshold[0.5]
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_spurious_boxes_hurt_precision_only(self):
        ground_truth = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        observations = [
            observation(33_000, BoundingBox(10, 10, 20, 20), track_id=1),
            observation(33_000, BoundingBox(150, 100, 20, 20), track_id=2),
        ]
        evaluation = evaluate_recording(observations, ground_truth, iou_thresholds=(0.5,))
        result = evaluation.by_threshold[0.5]
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(1.0)

    def test_precision_and_recall_fall_with_threshold(self):
        """A slightly offset tracker passes low thresholds but fails high ones."""
        ground_truth = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        observations = [observation(33_000, BoundingBox(14, 12, 20, 20))]
        evaluation = evaluate_recording(
            observations, ground_truth, iou_thresholds=(0.1, 0.3, 0.5, 0.7)
        )
        precisions = evaluation.precision_series()
        assert precisions[0] == 1.0
        assert precisions[-1] == 0.0
        assert all(a >= b for a, b in zip(precisions, precisions[1:]))

    def test_alignment_tolerance(self):
        """Tracker reports slightly offset in time still match the GT instant."""
        ground_truth = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        observations = [observation(40_000, BoundingBox(10, 10, 20, 20))]
        evaluation = evaluate_recording(
            observations, ground_truth, iou_thresholds=(0.5,), alignment_tolerance_us=20_000
        )
        assert evaluation.by_threshold[0.5].recall == 1.0
        strict = evaluate_recording(
            observations, ground_truth, iou_thresholds=(0.5,), alignment_tolerance_us=1_000
        )
        assert strict.by_threshold[0.5].recall == 0.0

    def test_num_ground_truth_tracks(self):
        ground_truth = [
            gt_frame(33_000, [BoundingBox(10, 10, 20, 20), BoundingBox(60, 60, 20, 20)]),
            gt_frame(99_000, [BoundingBox(14, 10, 20, 20)]),
        ]
        evaluation = evaluate_recording([], ground_truth, iou_thresholds=(0.5,))
        assert evaluation.num_ground_truth_tracks == 2

    def test_threshold_series_accessors(self):
        ground_truth = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        evaluation = evaluate_recording([], ground_truth, iou_thresholds=(0.3, 0.1, 0.5))
        assert evaluation.thresholds() == [0.1, 0.3, 0.5]
        assert len(evaluation.precision_series()) == 3
        assert len(evaluation.recall_series()) == 3


class TestWeightedAverage:
    def test_weights_applied(self):
        a = PrecisionRecall(1.0, 1.0, 10, 10, 10)
        b = PrecisionRecall(0.0, 0.0, 0, 10, 10)
        combined = weighted_average([a, b], [3, 1])
        assert combined.precision == pytest.approx(0.75)
        assert combined.recall == pytest.approx(0.75)
        assert combined.true_positives == 10
        assert combined.total_tracker_boxes == 20

    def test_errors(self):
        a = PrecisionRecall(1.0, 1.0, 1, 1, 1)
        with pytest.raises(ValueError):
            weighted_average([a], [1, 2])
        with pytest.raises(ValueError):
            weighted_average([], [])
        with pytest.raises(ValueError):
            weighted_average([a], [0])

    def test_sweep_combines_recordings(self):
        ground_truth_a = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        ground_truth_b = [gt_frame(33_000, [BoundingBox(10, 10, 20, 20)])]
        eval_a = evaluate_recording(
            [observation(33_000, BoundingBox(10, 10, 20, 20))],
            ground_truth_a,
            iou_thresholds=(0.5,),
            name="a",
        )
        eval_b = evaluate_recording([], ground_truth_b, iou_thresholds=(0.5,), name="b")
        combined = sweep_iou_thresholds([eval_a, eval_b])
        # Both recordings have one GT track, so the weights are equal.
        assert combined[0.5].precision == pytest.approx(0.5)
        assert combined[0.5].recall == pytest.approx(0.5)

    def test_sweep_empty(self):
        assert sweep_iou_thresholds([]) == {}
