"""Tests validating the resource models against the paper's quoted numbers.

Every number quoted in Section II of the paper is asserted here:
125.2 kops/frame (EBBI), 276.4 kops/frame (NN-filt), 8X memory saving,
10.8 kB EBBI memory, ~45.6-48 kops/frame (RPN), ~1.6 kB RPN memory,
≈ 564 ops/frame (OT), 1200 ops/frame (KF), ≈ 1.1 kB KF memory,
252 kops/frame (EBMS) and 3320 storage units of EBMS memory.
"""

from __future__ import annotations

import pytest

from repro.resources.ebbi_model import EbbiResourceModel, NnFilterResourceModel
from repro.resources.params import ResourceParams
from repro.resources.rpn_model import CnnDetectorReference, RpnResourceModel
from repro.resources.tracker_models import (
    EbmsResourceModel,
    KalmanResourceModel,
    OverlapTrackerResourceModel,
)


@pytest.fixture
def params() -> ResourceParams:
    return ResourceParams.paper_defaults()


class TestEbbiModelEq1:
    def test_computes_match_paper(self, params):
        # (0.1 * 9 + 2) * 43200 = 125 280 ≈ 125.2 kops/frame.
        assert EbbiResourceModel(params).computes_per_frame() == pytest.approx(125_280)

    def test_memory_matches_paper(self, params):
        model = EbbiResourceModel(params)
        assert model.memory_bits() == 2 * 240 * 180
        # 86 400 bits = 10.55 kB; the paper rounds to 10.8 kB (10.8 * 1000 * 8 bits).
        assert model.memory_kilobytes() == pytest.approx(10.8, rel=0.05)

    def test_computes_scale_with_alpha(self, params):
        sparse = EbbiResourceModel(params.with_measured(active_pixel_fraction=0.01))
        dense = EbbiResourceModel(params.with_measured(active_pixel_fraction=0.5))
        assert dense.computes_per_frame() > sparse.computes_per_frame()

    def test_summary_keys(self, params):
        summary = EbbiResourceModel(params).summary()
        assert {"name", "computes_per_frame", "memory_bits", "memory_kilobytes"} <= set(summary)


class TestNnFilterModelEq2:
    def test_computes_match_paper(self, params):
        # (2 * 8 + 16) * (2 * 0.1 * 43200) = 32 * 8640 = 276 480 ≈ 276.4 kops.
        assert NnFilterResourceModel(params).computes_per_frame() == pytest.approx(276_480)

    def test_events_per_frame(self, params):
        assert NnFilterResourceModel(params).events_per_frame() == pytest.approx(8_640)

    def test_memory_and_8x_saving(self, params):
        model = NnFilterResourceModel(params)
        assert model.memory_bits() == 16 * 43_200
        assert model.memory_saving_vs_ebbi() == pytest.approx(8.0)

    def test_nn_filter_needs_more_computes_than_ebbi(self, params):
        assert (
            NnFilterResourceModel(params).computes_per_frame()
            > EbbiResourceModel(params).computes_per_frame()
        )


class TestRpnModelEq5:
    def test_computes_near_paper_value(self, params):
        model = RpnResourceModel(params)
        # The literal Eq. (5) gives 48.0 kops; the paper's text quotes 45.6 kops.
        assert model.computes_per_frame() == pytest.approx(48_000)
        assert model.computes_per_frame_paper_quoted() == pytest.approx(45_600)

    def test_memory_matches_paper(self, params):
        model = RpnResourceModel(params)
        assert model.memory_bits() == pytest.approx(13_040)
        assert model.memory_kilobytes() == pytest.approx(1.6, rel=0.05)

    def test_downsampling_reduces_memory(self, params):
        coarse = RpnResourceModel(params)
        fine = RpnResourceModel(
            ResourceParams(downsample_x=2, downsample_y=1)
        )
        assert coarse.memory_bits() < fine.memory_bits()

    def test_cnn_reference_is_over_1000x(self, params):
        """The paper's '> 1000X less memory and computes' claim vs a CNN RPN."""
        rpn = RpnResourceModel(params)
        cnn = CnnDetectorReference()
        assert cnn.compute_ratio_vs_rpn(rpn) > 1000
        assert cnn.memory_ratio_vs_rpn(rpn) > 1000


class TestTrackerModelsEq6to8:
    def test_overlap_tracker_computes_near_564(self, params):
        model = OverlapTrackerResourceModel(params)
        assert model.matching_computes() == pytest.approx(536)
        assert model.computes_per_frame() == pytest.approx(564, rel=0.02)

    def test_overlap_tracker_memory_below_half_kb(self, params):
        assert OverlapTrackerResourceModel(params).memory_kilobytes() < 0.5

    def test_kalman_computes_match_paper(self, params):
        # n = m = 4: 4*64 + 6*16*4 + 4*4*16 + 4*64 + 3*16 = 1200.
        assert KalmanResourceModel(params).computes_per_frame() == pytest.approx(1_200)

    def test_kalman_memory_near_1_1_kb(self, params):
        assert KalmanResourceModel(params).memory_kilobytes() == pytest.approx(1.1, rel=0.25)

    def test_ebms_computes_match_paper(self, params):
        model = EbmsResourceModel(params)
        # 650 * (36 + 341.2 + 11) = 252 330 ≈ 252 kops.
        assert model.computes_per_frame() == pytest.approx(252_330)
        assert model.computes_per_event() == pytest.approx(388.2)

    def test_ebms_memory_storage_units(self, params):
        assert EbmsResourceModel(params).memory_storage_units() == 408 * 8 + 56

    def test_ebms_vs_overlap_tracker_ratio(self, params):
        """The paper: EBMS needs ≈ 500X more computes than the OT."""
        ratio = (
            EbmsResourceModel(params).computes_per_frame()
            / OverlapTrackerResourceModel(params).computes_per_frame()
        )
        assert 300 < ratio < 700

    def test_kalman_scales_with_tracker_count(self, params):
        small = KalmanResourceModel(params.with_measured(num_trackers=1))
        large = KalmanResourceModel(params.with_measured(num_trackers=4))
        assert large.computes_per_frame() > 4 * small.computes_per_frame()


class TestResourceParams:
    def test_paper_defaults(self):
        params = ResourceParams.paper_defaults()
        assert params.num_pixels == 43_200
        assert params.events_per_frame_raw == pytest.approx(8_640)

    def test_with_measured_overrides(self):
        params = ResourceParams().with_measured(
            active_pixel_fraction=0.05, events_per_frame_filtered=500, num_trackers=3,
            active_clusters=1.5,
        )
        assert params.active_pixel_fraction == 0.05
        assert params.events_per_frame_filtered == 500
        assert params.num_trackers == 3
        assert params.active_clusters == 1.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResourceParams(width=0)
        with pytest.raises(ValueError):
            ResourceParams(patch_size=2)
        with pytest.raises(ValueError):
            ResourceParams(active_pixel_fraction=1.5)
        with pytest.raises(ValueError):
            ResourceParams(events_per_active_pixel=0.5)
        with pytest.raises(ValueError):
            ResourceParams(merge_probability=2.0)
