"""Tests for the overlap-based tracker (Section II-C steps 1-5)."""

from __future__ import annotations

import pytest

from repro.core.histogram_rpn import RegionProposal
from repro.core.overlap_tracker import OverlapTracker, OverlapTrackerConfig
from repro.utils.geometry import BoundingBox


def proposal(x, y, w=30, h=20):
    box = BoundingBox(x, y, w, h)
    return RegionProposal(box=box, event_count=int(box.area * 0.5), density=0.5)


def run_frames(tracker, frames):
    """Feed a list of per-frame proposal lists; return per-frame observations."""
    outputs = []
    for index, proposals in enumerate(frames):
        outputs.append(tracker.process_frame(proposals, t_us=index * 66_000))
    return outputs


class TestSeedingAndConfirmation:
    def test_new_proposal_seeds_tentative_tracker(self):
        tracker = OverlapTracker(OverlapTrackerConfig(min_track_age_frames=2))
        first = tracker.process_frame([proposal(50, 60)], 0)
        assert first == []  # too young to be reported
        assert tracker.num_active_tracks == 1

    def test_track_confirmed_after_min_age(self):
        tracker = OverlapTracker(OverlapTrackerConfig(min_track_age_frames=2))
        outputs = run_frames(tracker, [[proposal(50, 60)], [proposal(54, 60)]])
        assert len(outputs[1]) == 1
        assert outputs[1][0].track_id == 1

    def test_max_trackers_respected(self):
        tracker = OverlapTracker(OverlapTrackerConfig(max_trackers=2))
        proposals = [proposal(10, 10), proposal(80, 80), proposal(150, 150), proposal(10, 150)]
        tracker.process_frame(proposals, 0)
        assert tracker.num_active_tracks == 2
        assert tracker.free_slots == 0

    def test_reset_clears_state(self):
        tracker = OverlapTracker()
        tracker.process_frame([proposal(10, 10)], 0)
        tracker.reset()
        assert tracker.num_active_tracks == 0
        assert tracker.frames_processed == 0


class TestTrackingAndPrediction:
    def test_track_follows_moving_object(self):
        tracker = OverlapTracker()
        frames = [[proposal(50 + 4 * i, 60)] for i in range(10)]
        outputs = run_frames(tracker, frames)
        final = outputs[-1][0]
        assert final.box.x == pytest.approx(50 + 4 * 9, abs=6)
        # Velocity converges to roughly 4 px/frame.
        assert final.velocity[0] == pytest.approx(4.0, abs=1.5)
        # The whole sequence keeps a single stable track id.
        track_ids = {o.track_id for frame in outputs for o in frame}
        assert len(track_ids) == 1

    def test_missed_frames_then_recovered(self):
        tracker = OverlapTracker(OverlapTrackerConfig(max_missed_frames=3))
        frames = [[proposal(50 + 4 * i, 60)] for i in range(5)]
        frames += [[], []]  # two frames with no proposals
        frames += [[proposal(50 + 4 * 7, 60)]]
        outputs = run_frames(tracker, frames)
        track_ids = {o.track_id for frame in outputs for o in frame}
        assert len(track_ids) == 1  # the original track survives the gap

    def test_track_dropped_after_too_many_misses(self):
        tracker = OverlapTracker(OverlapTrackerConfig(max_missed_frames=2))
        frames = [[proposal(50, 60)], [proposal(52, 60)], [], [], [], []]
        run_frames(tracker, frames)
        assert tracker.num_active_tracks == 0

    def test_coasting_track_moves_by_prediction(self):
        tracker = OverlapTracker(OverlapTrackerConfig(max_missed_frames=5, min_track_age_frames=1))
        frames = [[proposal(50 + 4 * i, 60)] for i in range(6)]
        outputs = run_frames(tracker, frames)
        x_before = outputs[-1][0].box.x
        coasted = tracker.process_frame([], 6 * 66_000)
        assert coasted[0].box.x > x_before

    def test_two_objects_two_tracks(self):
        tracker = OverlapTracker()
        frames = [
            [proposal(30 + 3 * i, 40), proposal(180 - 3 * i, 110)] for i in range(8)
        ]
        outputs = run_frames(tracker, frames)
        assert len(outputs[-1]) == 2
        track_ids = {o.track_id for o in outputs[-1]}
        assert len(track_ids) == 2


class TestFragmentationHandling:
    def test_fragmented_proposals_assigned_to_one_tracker(self):
        """Step 4: multiple proposals matching one tracker are merged."""
        tracker = OverlapTracker(OverlapTrackerConfig(min_track_age_frames=1))
        # Establish a wide track (a bus).
        run_frames(tracker, [[proposal(60, 60, 80, 30)], [proposal(64, 60, 80, 30)]])
        # The bus then fragments into front and rear blobs.
        fragments = [proposal(68, 60, 25, 30), proposal(120, 60, 25, 30)]
        output = tracker.process_frame(fragments, 2 * 66_000)
        assert len(output) == 1
        assert tracker.num_active_tracks == 1
        # The merged update covers both fragments.
        assert output[0].box.width >= 50

    def test_multiple_trackers_on_one_object_merged(self):
        """Step 5 without occlusion: co-moving trackers collapse into one."""
        config = OverlapTrackerConfig(min_track_age_frames=1, overlap_threshold=0.2)
        tracker = OverlapTracker(config)
        # Frame 0: two fragments seed two trackers (they move together).
        tracker.process_frame([proposal(60, 60, 20, 30), proposal(90, 60, 20, 30)], 0)
        tracker.process_frame([proposal(62, 60, 20, 30), proposal(92, 60, 20, 30)], 66_000)
        assert tracker.num_active_tracks == 2
        # Frame 2: the object is detected as one large proposal covering both.
        tracker.process_frame([proposal(62, 60, 55, 30)], 2 * 66_000)
        assert tracker.num_active_tracks == 1
        assert tracker.merges_performed >= 1


class TestOcclusionHandling:
    def test_dynamic_occlusion_keeps_both_trackers(self):
        """Step 5 with occlusion: approaching tracks coast on predictions."""
        config = OverlapTrackerConfig(min_track_age_frames=1, overlap_threshold=0.2)
        tracker = OverlapTracker(config)
        # Two objects approaching each other.
        for i in range(6):
            left = proposal(40 + 8 * i, 60, 30, 20)
            right = proposal(160 - 8 * i, 60, 30, 20)
            tracker.process_frame([left, right], i * 66_000)
        assert tracker.num_active_tracks == 2
        # They now overlap: a single merged proposal appears.
        merged_frame = [proposal(100, 60, 60, 20)]
        output = tracker.process_frame(merged_frame, 6 * 66_000)
        # Both trackers survive the occlusion (coasting on prediction).
        assert tracker.num_active_tracks == 2
        assert tracker.occlusions_detected >= 1
        assert len(output) == 2
        # Velocities are retained (opposite signs).
        velocities = sorted(o.velocity[0] for o in output)
        assert velocities[0] < 0 < velocities[1]


class TestStatisticsAndConfig:
    def test_mean_active_trackers(self):
        tracker = OverlapTracker()
        run_frames(tracker, [[proposal(50, 60)], [proposal(54, 60)], [proposal(58, 60)]])
        assert tracker.mean_active_trackers == pytest.approx(1.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OverlapTrackerConfig(max_trackers=0)
        with pytest.raises(ValueError):
            OverlapTrackerConfig(overlap_threshold=0.0)
        with pytest.raises(ValueError):
            OverlapTrackerConfig(prediction_weight=2.0)
        with pytest.raises(ValueError):
            OverlapTrackerConfig(occlusion_lookahead_frames=-1)

    def test_empty_frames_are_fine(self):
        tracker = OverlapTracker()
        assert tracker.process_frame([], 0) == []
        assert tracker.mean_active_trackers == 0.0
