"""Tests for the two-timescale extension (the paper's future-work feature)."""

from __future__ import annotations

import pytest

from repro.core import EbbiotConfig, TwoTimescaleConfig, TwoTimescalePipeline
from repro.events.noise import BackgroundActivityNoise
from repro.sensor.davis import SensorGeometry
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.trajectories import crossing_trajectory


@pytest.fixture(scope="module")
def pedestrian_and_car_stream():
    """A fast car plus a slow pedestrian — the scenario motivating the extension."""
    geometry = SensorGeometry()
    config = SceneConfig(
        geometry=geometry,
        noise=BackgroundActivityNoise(rate_hz_per_pixel=0.2),
        seed=29,
    )
    scene = Scene(config)
    car = OBJECT_TEMPLATES[ObjectClass.CAR]
    human = OBJECT_TEMPLATES[ObjectClass.HUMAN]
    scene.add_object(
        SceneObject(0, car, crossing_trajectory(240, 60, 70.0, 0, car.width_px, 1))
    )
    # A pedestrian at ~8 px/s: roughly 0.5 px per 66 ms frame (sub-pixel).
    scene.add_object(
        SceneObject(1, human, crossing_trajectory(240, 120, 8.0, 0, human.width_px, -1))
    )
    return scene.render(duration_us=6_000_000)


class TestTwoTimescaleConfig:
    def test_slow_config_derivation(self):
        config = TwoTimescaleConfig(fast=EbbiotConfig(), slow_factor=8)
        slow = config.slow_config()
        assert slow.frame_duration_us == 8 * 66_000
        assert slow.width == 240 and slow.height == 180
        assert slow.min_proposal_area == config.slow_min_proposal_area

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TwoTimescaleConfig(slow_factor=1)
        with pytest.raises(ValueError):
            TwoTimescaleConfig(slow_min_proposal_area=0)
        with pytest.raises(ValueError):
            TwoTimescaleConfig(suppression_overlap=0.0)


class TestTwoTimescalePipeline:
    def test_frame_counts(self, pedestrian_and_car_stream):
        config = TwoTimescaleConfig(slow_factor=8)
        pipeline = TwoTimescalePipeline(config)
        result = pipeline.process_stream(pedestrian_and_car_stream.stream)
        assert result.num_fast_frames > 0
        assert result.num_slow_frames == result.num_fast_frames // 8

    def test_slow_timescale_sees_the_pedestrian(self, pedestrian_and_car_stream):
        """The long-exposure slow frames pick up the near-sub-pixel
        pedestrian independently, and merging never loses fast coverage."""
        rendered = pedestrian_and_car_stream
        pedestrian_boxes = [
            b.box
            for frame in rendered.ground_truth
            for b in frame.boxes
            if b.object_class == "human"
        ]
        assert pedestrian_boxes, "scenario must contain pedestrian ground truth"

        def hits_pedestrian(observations):
            count = 0
            for observation in observations:
                if any(observation.box.iou(gt) > 0.2 for gt in pedestrian_boxes):
                    count += 1
            return count

        pipeline = TwoTimescalePipeline(TwoTimescaleConfig(slow_factor=8))
        result = pipeline.process_stream(rendered.stream)
        # The slow stream tracks the pedestrian on its own (this is the
        # capability the paper's future-work extension is after).
        assert hits_pedestrian(result.slow.track_history.observations) > 0
        # Merging suppresses redundant slow tracks but never loses fast ones.
        fast_hits = hits_pedestrian(result.fast.track_history.observations)
        merged_hits = hits_pedestrian(result.merged_history.observations)
        assert merged_hits >= fast_hits

    def test_merged_history_contains_fast_tracks(self, pedestrian_and_car_stream):
        pipeline = TwoTimescalePipeline(TwoTimescaleConfig(slow_factor=8))
        result = pipeline.process_stream(pedestrian_and_car_stream.stream)
        fast_count = len(result.fast.track_history)
        merged_fast = [o for o in result.merged_history.observations if o.track_id > 0]
        assert len(merged_fast) == fast_count

    def test_slow_tracks_have_negative_ids(self, pedestrian_and_car_stream):
        pipeline = TwoTimescalePipeline(TwoTimescaleConfig(slow_factor=8))
        result = pipeline.process_stream(pedestrian_and_car_stream.stream)
        slow_ids = [o.track_id for o in result.merged_history.observations if o.track_id < 0]
        # The pedestrian shows up in the slow stream, so some slow tracks survive.
        assert len(slow_ids) > 0
