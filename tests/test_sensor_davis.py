"""Tests for the DAVIS pixel-latch sensor model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.types import make_packet
from repro.sensor.davis import DAVIS240, DavisSensor, SensorGeometry


class TestSensorGeometry:
    def test_defaults_match_paper(self):
        assert DAVIS240.width == 240
        assert DAVIS240.height == 180
        assert DAVIS240.num_pixels == 43_200

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SensorGeometry(width=0, height=180)
        with pytest.raises(ValueError):
            SensorGeometry(width=240, height=180, lens_focal_length_mm=0)

    def test_lens_scale(self):
        lt4 = SensorGeometry(lens_focal_length_mm=6.0)
        assert lt4.scale_relative_to(DAVIS240) == pytest.approx(0.5)


class TestDavisSensorLatch:
    def test_accumulate_sets_latch(self):
        sensor = DavisSensor()
        sensor.accumulate(make_packet([5, 5, 6], [7, 7, 7], [0, 10, 20], [1, -1, 1]))
        frame = sensor.peek()
        assert frame[7, 5] == 1
        assert frame[7, 6] == 1
        # Multiple events at one pixel still latch a single 1.
        assert frame.sum() == 2

    def test_readout_clears_latch(self):
        sensor = DavisSensor()
        sensor.accumulate(make_packet([1], [1], [0], [1]))
        frame = sensor.readout()
        assert frame[1, 1] == 1
        assert sensor.peek().sum() == 0
        assert sensor.events_since_readout == 0

    def test_out_of_bounds_event_rejected(self):
        sensor = DavisSensor()
        with pytest.raises(ValueError):
            sensor.accumulate(make_packet([500], [1], [0], [1]))

    def test_wrong_dtype_rejected(self):
        sensor = DavisSensor()
        with pytest.raises(TypeError):
            sensor.accumulate(np.zeros(3))

    def test_empty_packet_is_noop(self):
        sensor = DavisSensor()
        sensor.accumulate(make_packet([], [], [], []))
        assert sensor.events_since_readout == 0

    def test_statistics(self):
        sensor = DavisSensor()
        sensor.accumulate(make_packet([1, 2], [1, 2], [0, 1], [1, 1]))
        sensor.readout()
        sensor.accumulate(make_packet([3, 4], [3, 4], [2, 3], [1, 1]))
        sensor.readout()
        assert sensor.total_events == 4
        assert sensor.total_readouts == 2
        assert sensor.mean_events_per_frame() == pytest.approx(2.0)

    def test_active_pixel_fraction(self):
        sensor = DavisSensor()
        sensor.accumulate(make_packet([0, 1], [0, 0], [0, 1], [1, 1]))
        assert sensor.active_pixel_count == 2
        assert sensor.active_pixel_fraction == pytest.approx(2 / 43_200)

    def test_reset(self):
        sensor = DavisSensor()
        sensor.accumulate(make_packet([1], [1], [0], [1]))
        sensor.reset()
        assert sensor.total_events == 0
        assert sensor.peek().sum() == 0


class TestPolarityTracking:
    def test_polarity_readout(self):
        sensor = DavisSensor(track_polarity=True)
        sensor.accumulate(make_packet([1, 2], [1, 1], [0, 1], [1, -1]))
        combined, on, off = sensor.readout_polarity()
        assert combined.sum() == 2
        assert on[1, 1] == 1 and on[1, 2] == 0
        assert off[1, 2] == 1 and off[1, 1] == 0

    def test_polarity_readout_requires_flag(self):
        sensor = DavisSensor(track_polarity=False)
        with pytest.raises(RuntimeError):
            sensor.readout_polarity()

    def test_sensor_matches_ebbi_builder(self, single_car_stream):
        """The sensor latch model and events_to_binary_frame agree."""
        from repro.core.ebbi import events_to_binary_frame

        sensor = DavisSensor()
        for t_start, t_end, events in single_car_stream.stream.iter_frames(66_000):
            sensor.accumulate(events)
            frame_from_sensor = sensor.readout()
            frame_direct = events_to_binary_frame(events, 240, 180)
            np.testing.assert_array_equal(frame_from_sensor, frame_direct)
            break
