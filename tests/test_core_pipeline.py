"""Tests for the end-to-end EBBIOT pipeline."""

from __future__ import annotations

import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events.stream import EventStream
from repro.events.types import empty_packet
from repro.utils.geometry import BoundingBox


class TestPipelineOnSyntheticSquare:
    def test_tracks_constant_velocity_square(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig(min_proposal_area=4.0))
        result = pipeline.process_stream(constant_velocity_stream)
        assert result.num_frames > 20
        # The square is detected in (almost) every frame after confirmation.
        frames_with_track = sum(1 for frame in result.frames if frame.tracks)
        assert frames_with_track >= result.num_frames - 5
        # A single stable track id is used throughout.
        assert len(result.track_history.track_ids()) == 1

    def test_track_positions_follow_object(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig(min_proposal_area=4.0))
        result = pipeline.process_stream(constant_velocity_stream)
        observations = result.track_history.observations
        xs = [o.box.x for o in observations]
        # Object moves right at 2 px / 33 ms = ~4 px per 66 ms frame.
        assert xs[-1] > xs[0] + 50

    def test_statistics_populated(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig(min_proposal_area=4.0))
        result = pipeline.process_stream(constant_velocity_stream)
        assert 0 < result.mean_active_pixel_fraction < 0.05
        assert result.mean_events_per_frame > 0
        assert 0 < result.mean_active_trackers <= 2


class TestPipelineOnSimulatedScene:
    def test_single_car_scene_tracked(self, single_car_stream):
        pipeline = EbbiotPipeline(EbbiotConfig())
        result = pipeline.process_stream(single_car_stream.stream)
        assert result.total_track_observations() > 10
        # Noise alone never creates more trackers than objects + a small margin.
        assert len(result.track_history.track_ids()) <= 3

    def test_keep_frames_flag(self, single_car_stream):
        pipeline = EbbiotPipeline(EbbiotConfig(), keep_frames=True)
        result = pipeline.process_stream(single_car_stream.stream)
        assert result.frames[0].ebbi is not None
        pipeline_no_frames = EbbiotPipeline(EbbiotConfig(), keep_frames=False)
        result_no_frames = pipeline_no_frames.process_stream(single_car_stream.stream)
        assert result_no_frames.frames[0].ebbi is None

    def test_roe_suppresses_distractor_tracks(self, small_geometry):
        """With an ROE over a foliage distractor, no tracks appear inside it."""
        from repro.events.noise import BackgroundActivityNoise
        from repro.simulation.event_generator import FoliageDistractor
        from repro.simulation.scene import Scene, SceneConfig

        region = BoundingBox(0, 130, 60, 50)
        config = SceneConfig(
            geometry=small_geometry,
            noise=BackgroundActivityNoise(rate_hz_per_pixel=0.2),
            distractors=[FoliageDistractor(region, events_per_pixel_per_s=4.0)],
            seed=13,
        )
        scene = Scene(config)
        rendered = scene.render(duration_us=3_000_000)

        with_roe = EbbiotPipeline(EbbiotConfig(roe_boxes=scene.roe_boxes()))
        result_with = with_roe.process_stream(rendered.stream)
        without_roe = EbbiotPipeline(EbbiotConfig())
        result_without = without_roe.process_stream(rendered.stream)

        def tracks_in_region(result):
            return sum(
                1
                for o in result.track_history.observations
                if region.intersection_area(o.box) > 0.5 * o.box.area
            )

        assert tracks_in_region(result_without) > 0
        assert tracks_in_region(result_with) == 0


class TestPipelineMechanics:
    def test_empty_stream(self):
        pipeline = EbbiotPipeline(EbbiotConfig())
        result = pipeline.process_stream(EventStream(empty_packet(), 240, 180))
        assert result.num_frames == 0
        assert result.total_track_observations() == 0

    def test_iter_stream_matches_process_stream_frame_count(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig())
        lazy_frames = list(pipeline.iter_stream(constant_velocity_stream))
        pipeline.reset()
        eager = pipeline.process_stream(constant_velocity_stream)
        assert len(lazy_frames) == eager.num_frames

    def test_process_stream_resets_state(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig())
        first = pipeline.process_stream(constant_velocity_stream)
        second = pipeline.process_stream(constant_velocity_stream)
        assert first.num_frames == second.num_frames
        assert first.total_track_observations() == second.total_track_observations()

    def test_frame_result_midpoint(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig())
        result = pipeline.process_stream(constant_velocity_stream)
        frame = result.frames[0]
        assert frame.t_mid_us == (frame.t_start_us + frame.t_end_us) // 2

    def test_min_proposal_area_filters_noise(self, constant_velocity_stream):
        strict = EbbiotPipeline(EbbiotConfig(min_proposal_area=10_000.0))
        result = strict.process_stream(constant_velocity_stream)
        assert result.total_proposals() == 0


def _block_packet(frame_positions, block=6, frame_duration_us=100):
    """One 6x6 block of active pixels per frame, at the given (x, y) corners."""
    xs, ys, ts = [], [], []
    for frame_index, (x0, y0) in enumerate(frame_positions):
        t = frame_index * frame_duration_us + 10
        for dy in range(block):
            for dx in range(block):
                xs.append(x0 + dx)
                ys.append(y0 + dy)
                ts.append(t)
    from repro.events.types import make_packet

    return make_packet(xs, ys, ts, [1] * len(xs))


class TestProcessStreamSummaryStatistics:
    """Hand-computed alpha / n / NT on a tiny fixed stream (3 frames)."""

    def _stream(self):
        packet = _block_packet([(60, 60), (62, 60), (64, 60)])
        return EventStream(packet, 240, 180)

    def _pipeline(self):
        return EbbiotPipeline(
            EbbiotConfig(frame_duration_us=100, min_proposal_area=4.0)
        )

    def test_mean_events_per_frame(self):
        result = self._pipeline().process_stream(self._stream())
        # 36 events in each of the 3 frames.
        assert result.num_frames == 3
        assert result.mean_events_per_frame == pytest.approx(36.0)

    def test_mean_active_pixel_fraction(self):
        result = self._pipeline().process_stream(self._stream())
        # Each frame has exactly 36 active pixels out of 240 x 180.
        assert result.mean_active_pixel_fraction == pytest.approx(36 / (240 * 180))

    def test_mean_active_trackers(self):
        result = self._pipeline().process_stream(self._stream())
        # The single block allocates one tracker in frame 0 and keeps
        # matching it, so every frame ends with exactly one active slot.
        assert result.mean_active_trackers == pytest.approx(1.0)

    def test_statistics_survive_collect_frames_false(self):
        reference = self._pipeline().process_stream(self._stream())
        compact = self._pipeline().process_stream(
            self._stream(), collect_frames=False
        )
        assert compact.frames == []
        assert compact.num_frames == reference.num_frames
        assert compact.total_proposals() == reference.total_proposals()
        assert compact.mean_events_per_frame == pytest.approx(
            reference.mean_events_per_frame
        )
        assert compact.mean_active_pixel_fraction == pytest.approx(
            reference.mean_active_pixel_fraction
        )
        assert compact.mean_active_trackers == pytest.approx(
            reference.mean_active_trackers
        )
        assert len(compact.track_history) == len(reference.track_history)


class TestChunkedProcessing:
    def test_chunk_size_does_not_change_results(self, constant_velocity_stream):
        reference = EbbiotPipeline(
            EbbiotConfig(min_proposal_area=4.0)
        ).process_stream(constant_velocity_stream, chunk_frames=1)
        for chunk_frames in (2, 7, 1024):
            result = EbbiotPipeline(
                EbbiotConfig(min_proposal_area=4.0)
            ).process_stream(constant_velocity_stream, chunk_frames=chunk_frames)
            assert result.num_frames == reference.num_frames
            assert result.total_proposals() == reference.total_proposals()
            assert [o.to_dict() for o in result.track_history.observations] == [
                o.to_dict() for o in reference.track_history.observations
            ]
            assert result.mean_active_pixel_fraction == pytest.approx(
                reference.mean_active_pixel_fraction
            )

    def test_chunked_matches_lazy_iteration(self, constant_velocity_stream):
        pipeline = EbbiotPipeline(EbbiotConfig(min_proposal_area=4.0))
        eager = pipeline.process_stream(constant_velocity_stream, chunk_frames=16)
        pipeline_lazy = EbbiotPipeline(EbbiotConfig(min_proposal_area=4.0))
        lazy = list(pipeline_lazy.iter_stream(constant_velocity_stream))
        assert len(lazy) == eager.num_frames
        for lazy_frame, eager_frame in zip(lazy, eager.frames):
            assert lazy_frame.num_events == eager_frame.num_events
            assert lazy_frame.proposals == eager_frame.proposals

    def test_invalid_chunk_frames_rejected(self, constant_velocity_stream):
        with pytest.raises(ValueError):
            EbbiotPipeline().process_stream(
                constant_velocity_stream, chunk_frames=0
            )
