"""Seeded CONC004 violations: blocking hub work on the event loop."""

import time


class BadFrontDoor:
    def __init__(self, hub):
        self.hub = hub

    async def handle_hello(self, sensor_id, config):
        # CONC004: register blocks on the hub's control path.
        self.hub.register(sensor_id, config=config)

    async def handle_finish(self, sensor_id):
        # CONC004: close_sensor waits for a full queue drain.
        result = self.hub.close_sensor(sensor_id)
        # CONC004: time.sleep parks the whole event loop.
        time.sleep(0.01)
        return result
