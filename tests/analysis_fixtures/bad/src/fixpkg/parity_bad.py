"""Seeded PARITY001 violation: gated fast path with no parity coverage.

The module consults ``scalar_forced`` but the tree's
``tests/test_event_path_parity.py`` never mentions ``fixpkg.parity_bad``.
"""

from fixpkg.gates import scalar_forced


class GatedFilter:
    def __init__(self, vectorized=True):
        self.vectorized = vectorized

    def process(self, events):
        if not self.vectorized or scalar_forced():
            return self.process_scalar(events)
        return self._process_fast(events)

    def process_scalar(self, events):
        return events

    def _process_fast(self, events):
        return events
