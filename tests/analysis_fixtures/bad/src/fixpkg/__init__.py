"""Known-bad fixture package: every module seeds one rule violation."""
