"""Seeded SNAP001 violation: evolving state absent from the snapshot pair."""


class BadTracker:
    def __init__(self):
        self._count = 0
        self._history = []
        self._last_seen = {}

    def step(self, key, value):
        self._count += 1
        self._history.append(value)
        # Mutation through a one-level local alias, like the real filters.
        table = self._last_seen
        table[key] = value

    def snapshot(self):
        # _history and _last_seen are forgotten here ...
        return {"count": self._count}

    def restore(self, state):
        # ... and here: SNAP001 for both.
        self._count = state["count"]
