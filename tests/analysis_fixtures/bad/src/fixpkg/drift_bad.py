"""Seeded DRIFT001 + DRIFT002 violations: flag and metric absent from docs."""

import argparse

WIDGET_METRIC = "repro_fixture_widgets_total"


def build_parser():
    parser = argparse.ArgumentParser(prog="fixpkg")
    parser.add_argument("--widget-level", type=int, default=1)
    return parser
