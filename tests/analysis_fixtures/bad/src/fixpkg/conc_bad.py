"""Seeded concurrency violations: CONC001, CONC002 (both parts), CONC003."""

import queue
import threading


class BadHub:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in range(4)]
        self._counter = 0
        self._table = {}
        self._queue = queue.Queue()
        self._worker = threading.Thread(target=self._run, daemon=True)

    def forward(self):
        # Takes a then b ...
        with self._lock_a:
            with self._lock_b:
                self._counter += 1

    def backward(self):
        # ... and here b then a: CONC001 lock-order inversion.
        with self._lock_b:
            with self._lock_a:
                self._counter -= 1

    def unsorted_pair(self, first, second):
        # CONC001 warning: two members of one lock list, unsorted indices.
        with self._shard_locks[first], self._shard_locks[second]:
            self._table["pair"] = (first, second)

    def racy_write(self, key, value):
        # CONC002: mutated with no lock, read under _lock_a in lookup().
        self._table[key] = value

    def lookup(self, key):
        with self._lock_a:
            return self._table.get(key)

    def tally(self):
        # CONC002: unguarded read-modify-write in a thread-spawning class.
        self._counter += 1

    def publish(self, item):
        # CONC003: blocking queue put while holding the lock.
        with self._lock_a:
            self._queue.put(item)

    def _run(self):
        while True:
            self._queue.get()
