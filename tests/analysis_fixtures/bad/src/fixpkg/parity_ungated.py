"""Seeded PARITY002 violation: a ``vectorized`` switch with no gate.

``REPRO_FORCE_SCALAR`` cannot pin this class to its reference path —
the module never consults ``scalar_forced``.
"""


class UngatedFilter:
    def __init__(self, vectorized=True):
        self.vectorized = vectorized

    def process(self, events):
        if not self.vectorized:
            return self.process_scalar(events)
        return self._process_fast(events)

    def process_scalar(self, events):
        return events

    def _process_fast(self, events):
        return events
