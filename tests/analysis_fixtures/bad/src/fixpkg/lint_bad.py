"""Seeded LINT001 violation: module-level import that nothing uses."""

import os
import json


def encode(payload):
    return json.dumps(payload)
