"""Fixture parity harness for the *bad* tree.

Exists so PARITY001 reports the "never referenced" message rather than
the "no parity harness" one.  It covers only ``fixpkg.gates`` — the
gated filter module is deliberately missing from the list below.
"""

COVERED_MODULES = ["fixpkg.gates"]
