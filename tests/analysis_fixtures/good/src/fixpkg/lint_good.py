"""Clean lint twin: every module-level import is used."""

import json


def encode(payload):
    return json.dumps(payload)
