"""Clean twin of snap_bad: every mutable attribute round-trips."""


class GoodTracker:
    def __init__(self):
        self._count = 0
        self._history = []
        self._last_seen = {}

    def step(self, key, value):
        self._count += 1
        self._history.append(value)
        table = self._last_seen
        table[key] = value

    def snapshot(self):
        return {
            "count": self._count,
            "history": list(self._history),
            "last_seen": dict(self._last_seen),
        }

    def restore(self, state):
        self._count = state["count"]
        self._history = list(state["history"])
        self._last_seen = dict(state["last_seen"])
