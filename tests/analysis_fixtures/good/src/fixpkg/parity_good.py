"""Clean parity twin: gated fast path, covered by the parity harness.

``tests/test_event_path_parity.py`` in this fixture root references
``fixpkg.parity_good``, so PARITY001 stays silent, and the ``vectorized``
switch shares its dispatch with ``scalar_forced`` so PARITY002 does too.
"""

from fixpkg.gates import scalar_forced


class CoveredFilter:
    def __init__(self, vectorized=True):
        self.vectorized = vectorized

    def process(self, events):
        if not self.vectorized or scalar_forced():
            return self.process_scalar(events)
        return self._process_fast(events)

    def process_scalar(self, events):
        return events

    def _process_fast(self, events):
        return events
