"""Clean drift twin: the flag and metric below appear in this root's README."""

import argparse

WIDGET_METRIC = "repro_fixture_widgets_total"


def build_parser():
    parser = argparse.ArgumentParser(prog="fixpkg")
    parser.add_argument("--widget-level", type=int, default=1)
    return parser
