"""Known-good fixture package: the clean twins of the bad tree."""
