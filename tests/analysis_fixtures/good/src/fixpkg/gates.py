"""Fixture stand-in for the real ``repro.utils.fastpath`` gate."""

import os


def scalar_forced():
    return os.environ.get("REPRO_FORCE_SCALAR", "") not in ("", "0")
