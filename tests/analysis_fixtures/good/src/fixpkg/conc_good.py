"""Clean twin of conc_bad: same shape, the discipline repaired."""

import queue
import threading


class GoodHub:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in range(4)]
        self._counter = 0
        self._table = {}
        self._queue = queue.Queue()
        self._worker = threading.Thread(target=self._run, daemon=True)

    def forward(self):
        with self._lock_a:
            with self._lock_b:
                self._counter += 1

    def backward(self):
        # Same global order as forward: no inversion.
        with self._lock_a:
            with self._lock_b:
                self._counter -= 1

    def guarded_write(self, key, value):
        with self._lock_a:
            self._table[key] = value

    def lookup(self, key):
        with self._lock_a:
            return self._table.get(key)

    def tally(self):
        with self._lock_a:
            self._counter += 1

    def publish(self, item):
        # Enqueue outside the critical section.
        with self._lock_a:
            payload = self._table.get("pair")
        self._queue.put((item, payload))

    def _run(self):
        while True:
            self._queue.get()
