"""Clean twin of async_bad: hub work handed to threads, async sleeps."""

import asyncio


class GoodFrontDoor:
    def __init__(self, hub):
        self.hub = hub

    async def handle_hello(self, sensor_id, config):
        await asyncio.to_thread(self.hub.register, sensor_id, config=config)

    async def handle_finish(self, sensor_id):
        result = await asyncio.to_thread(self.hub.close_sensor, sensor_id)
        await asyncio.sleep(0.01)
        return result
