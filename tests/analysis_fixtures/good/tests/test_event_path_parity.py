"""Fixture parity harness for the *good* tree.

References every gated module, so PARITY001 stays silent:
``fixpkg.parity_good`` is exercised here.
"""

COVERED_MODULES = ["fixpkg.gates", "fixpkg.parity_good"]
