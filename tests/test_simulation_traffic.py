"""Tests for the traffic scenario builders."""

from __future__ import annotations

import pytest

from repro.sensor.davis import SensorGeometry
from repro.simulation.objects import ObjectClass
from repro.simulation.traffic import (
    DEFAULT_CLASS_MIX,
    TrafficScenarioConfig,
    build_traffic_scene,
    default_foliage,
)


class TestTrafficScenarioConfig:
    def test_defaults_are_valid(self):
        config = TrafficScenarioConfig()
        assert config.duration_s > 0
        assert sum(config.effective_class_mix().values()) == pytest.approx(1.0)

    def test_humans_excluded_by_default(self):
        mix = TrafficScenarioConfig().effective_class_mix()
        assert ObjectClass.HUMAN not in mix

    def test_humans_included_when_requested(self):
        mix = TrafficScenarioConfig(include_humans=True).effective_class_mix()
        assert ObjectClass.HUMAN in mix
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrafficScenarioConfig(duration_s=0)
        with pytest.raises(ValueError):
            TrafficScenarioConfig(arrival_rate_per_s=-1)
        with pytest.raises(ValueError):
            TrafficScenarioConfig(lane_y_positions=[])
        with pytest.raises(ValueError):
            TrafficScenarioConfig(object_scale=0)
        with pytest.raises(ValueError):
            TrafficScenarioConfig(stop_and_go_probability=1.5)

    def test_zero_probability_mix_rejected(self):
        config = TrafficScenarioConfig(class_mix={ObjectClass.HUMAN: 1.0})
        with pytest.raises(ValueError):
            config.effective_class_mix()


class TestBuildTrafficScene:
    def test_arrival_rate_controls_object_count(self):
        sparse = build_traffic_scene(
            TrafficScenarioConfig(duration_s=120, arrival_rate_per_s=0.05, seed=1)
        )
        dense = build_traffic_scene(
            TrafficScenarioConfig(duration_s=120, arrival_rate_per_s=0.5, seed=1)
        )
        assert len(dense.objects) > len(sparse.objects)

    def test_objects_use_configured_lanes(self):
        lanes = (30.0, 90.0)
        scene = build_traffic_scene(
            TrafficScenarioConfig(
                duration_s=200, arrival_rate_per_s=0.3, lane_y_positions=lanes, seed=3
            )
        )
        assert len(scene.objects) > 0
        for scene_object in scene.objects:
            y = scene_object.trajectory.position(scene_object.trajectory.t_start_us)[1]
            assert y in lanes

    def test_lens_scales_object_sizes(self):
        eng_geometry = SensorGeometry(lens_focal_length_mm=12.0)
        lt4_geometry = SensorGeometry(lens_focal_length_mm=6.0)
        eng = build_traffic_scene(
            TrafficScenarioConfig(
                duration_s=300, arrival_rate_per_s=0.3, geometry=eng_geometry, seed=7
            )
        )
        lt4 = build_traffic_scene(
            TrafficScenarioConfig(
                duration_s=300, arrival_rate_per_s=0.3, geometry=lt4_geometry, seed=7
            )
        )
        mean_width_eng = sum(o.width for o in eng.objects) / len(eng.objects)
        mean_width_lt4 = sum(o.width for o in lt4.objects) / len(lt4.objects)
        assert mean_width_lt4 == pytest.approx(mean_width_eng / 2, rel=0.3)

    def test_deterministic_for_seed(self):
        config = TrafficScenarioConfig(duration_s=100, arrival_rate_per_s=0.3, seed=11)
        first = build_traffic_scene(config)
        second = build_traffic_scene(config)
        assert len(first.objects) == len(second.objects)
        for a, b in zip(first.objects, second.objects):
            assert a.object_class == b.object_class
            assert a.trajectory.t_start_us == b.trajectory.t_start_us

    def test_stop_and_go_objects_created(self):
        scene = build_traffic_scene(
            TrafficScenarioConfig(
                duration_s=200,
                arrival_rate_per_s=0.3,
                stop_and_go_probability=1.0,
                seed=5,
            )
        )
        from repro.simulation.trajectories import StopAndGoTrajectory

        assert len(scene.objects) > 0
        assert any(isinstance(o.trajectory, StopAndGoTrajectory) for o in scene.objects)

    def test_foliage_carried_into_scene(self):
        geometry = SensorGeometry()
        foliage = default_foliage(geometry)
        scene = build_traffic_scene(
            TrafficScenarioConfig(duration_s=30, foliage=foliage, seed=2)
        )
        assert len(scene.config.distractors) == 1
        assert len(scene.roe_boxes()) == 1

    def test_rendered_scene_is_processable(self):
        """A short rendered traffic scene feeds the pipeline without errors."""
        from repro.core import EbbiotConfig, EbbiotPipeline

        scene = build_traffic_scene(
            TrafficScenarioConfig(duration_s=5, arrival_rate_per_s=0.5, seed=21)
        )
        result = scene.render(duration_us=5_000_000)
        pipeline = EbbiotPipeline(EbbiotConfig())
        output = pipeline.process_stream(result.stream)
        assert output.num_frames > 0
