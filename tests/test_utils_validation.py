"""Tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import ensure_in_range, ensure_positive, ensure_positive_int


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive("x", 3.5) == 3.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            ensure_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive("x", -1)


class TestEnsurePositiveInt:
    def test_accepts_positive_int(self):
        assert ensure_positive_int("n", 4) == 4

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            ensure_positive_int("n", 0)
        with pytest.raises(ValueError):
            ensure_positive_int("n", -2)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            ensure_positive_int("n", True)
        with pytest.raises(TypeError):
            ensure_positive_int("n", 2.0)


class TestEnsureInRange:
    def test_inclusive_bounds(self):
        assert ensure_in_range("v", 0.0, 0.0, 1.0) == 0.0
        assert ensure_in_range("v", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            ensure_in_range("v", 0.0, 0.0, 1.0, inclusive=False)
        assert ensure_in_range("v", 0.5, 0.0, 1.0, inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="v"):
            ensure_in_range("v", 2.0, 0.0, 1.0)
