"""Tests for the connected-component region proposal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cca_rpn import ConnectedComponentRPN, label_connected_components


def _frame_with_blocks(*blocks, width=120, height=90):
    frame = np.zeros((height, width), dtype=np.uint8)
    for x, y, w, h in blocks:
        frame[y : y + h, x : x + w] = 1
    return frame


class TestConnectedComponentLabelling:
    def test_single_component(self):
        labels, count = label_connected_components(_frame_with_blocks((10, 10, 5, 5)))
        assert count == 1
        assert (labels > 0).sum() == 25

    def test_two_separate_components(self):
        frame = _frame_with_blocks((5, 5, 4, 4), (50, 50, 6, 6))
        labels, count = label_connected_components(frame)
        assert count == 2
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_diagonal_connectivity(self):
        frame = np.zeros((10, 10), dtype=np.uint8)
        frame[2, 2] = 1
        frame[3, 3] = 1
        _, count8 = label_connected_components(frame, connectivity=8)
        _, count4 = label_connected_components(frame, connectivity=4)
        assert count8 == 1
        assert count4 == 2

    def test_u_shape_merges_via_union_find(self):
        """A U-shaped component gets provisional labels that must be merged."""
        frame = np.zeros((10, 12), dtype=np.uint8)
        frame[2:8, 2] = 1
        frame[2:8, 8] = 1
        frame[7, 2:9] = 1
        _, count = label_connected_components(frame)
        assert count == 1

    def test_empty_frame(self):
        labels, count = label_connected_components(np.zeros((5, 5), dtype=np.uint8))
        assert count == 0
        assert labels.sum() == 0

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            label_connected_components(np.zeros((5, 5)), connectivity=6)


class TestConnectedComponentRPN:
    def test_one_proposal_per_component(self):
        frame = _frame_with_blocks((5, 5, 8, 8), (60, 40, 10, 10))
        proposals = ConnectedComponentRPN(merge_gap_px=0.0).propose(frame)
        assert len(proposals) == 2

    def test_small_components_discarded(self):
        frame = _frame_with_blocks((5, 5, 2, 2), (60, 40, 10, 10))
        proposals = ConnectedComponentRPN(min_component_pixels=5, merge_gap_px=0.0).propose(frame)
        assert len(proposals) == 1

    def test_nearby_fragments_merged(self):
        frame = _frame_with_blocks((20, 20, 8, 12), (31, 20, 8, 12))
        proposals = ConnectedComponentRPN(merge_gap_px=6.0).propose(frame)
        assert len(proposals) == 1
        assert proposals[0].box.width >= 19

    def test_far_components_not_merged(self):
        frame = _frame_with_blocks((5, 5, 8, 8), (80, 60, 8, 8))
        proposals = ConnectedComponentRPN(merge_gap_px=4.0).propose(frame)
        assert len(proposals) == 2

    def test_box_tightly_encloses_component(self):
        frame = _frame_with_blocks((30, 40, 12, 6))
        proposals = ConnectedComponentRPN(merge_gap_px=0.0).propose(frame)
        box = proposals[0].box
        assert (box.x, box.y, box.width, box.height) == (30, 40, 12, 6)

    def test_empty_frame(self):
        assert ConnectedComponentRPN().propose(np.zeros((20, 20), dtype=np.uint8)) == []

    def test_agrees_with_histogram_rpn_on_simple_scene(self):
        """On a clean single-object frame both RPNs find roughly the same box."""
        from repro.core.histogram_rpn import HistogramRegionProposer

        frame = _frame_with_blocks((40, 30, 24, 18), width=240, height=180)
        cca_box = ConnectedComponentRPN().propose(frame)[0].box
        hist_box = HistogramRegionProposer().propose(frame)[0].box
        assert cca_box.iou(hist_box) > 0.5
