"""Tests for the serving-scale benchmark suite and its harness gating."""

from __future__ import annotations

import pytest

from repro.bench import (
    FULL_SERVING_PROFILE,
    QUICK_SERVING_PROFILE,
    ServingScaleProfile,
    build_report,
    compare_reports,
    dump_report,
    load_report,
    run_suite,
)
from repro.bench.__main__ import SUITES, format_scenarios
from repro.bench.__main__ import main as bench_main

#: Smallest meaningful grid: two cells per hub, one trial, one scene.
TINY_SERVING = ServingScaleProfile(
    name="tiny",
    sensor_counts=(1, 2),
    scenes=1,
    duration_s=0.3,
    batch_us=4_000,
    workers=2,
    trials=1,
    warmup_batches=20,
    parity_sensors=1,
    speedup_cell=16,  # absent from the grid -> falls back to the 2-cell
)


@pytest.fixture(scope="module")
def tiny_results():
    return run_suite(TINY_SERVING)


class TestRunSuite:
    def test_scenarios_and_per_cell_metrics(self, tiny_results):
        assert set(tiny_results) == {"thread_hub", "process_hub"}
        for metrics in tiny_results.values():
            assert metrics["primary"] == "frames_per_s_2"
            assert metrics[metrics["primary"]] > 0
            for sensors in (1, 2):
                assert metrics[f"frames_per_s_{sensors}"] > 0
                assert metrics[f"events_per_s_{sensors}"] > 0
                assert metrics[f"p99_ms_{sensors}"] >= 0
            assert metrics["parity_ok"] == 1.0
            assert metrics["parity_sensors"] == 1.0

    def test_scaling_efficiency_reported_per_hub(self, tiny_results):
        for metrics in tiny_results.values():
            efficiency = metrics["scaling_efficiency_2"]
            assert efficiency == pytest.approx(
                metrics["frames_per_s_2"] / (2 * metrics["frames_per_s_1"])
            )

    def test_speedup_cell_falls_back_to_largest(self, tiny_results):
        process = tiny_results["process_hub"]
        assert process["speedup_cell_sensors"] == 2.0
        assert process["speedup_vs_thread"] == pytest.approx(
            process["frames_per_s_2"]
            / tiny_results["thread_hub"]["frames_per_s_2"]
        )
        for sensors in (1, 2):
            assert process[f"ratio_vs_thread_{sensors}"] > 0
        assert "speedup_vs_thread" not in tiny_results["thread_hub"]

    def test_committed_profiles_target_the_16_sensor_cell(self):
        for profile in (FULL_SERVING_PROFILE, QUICK_SERVING_PROFILE):
            assert profile.speedup_cell == 16
            assert 16 in profile.sensor_counts


def make_serving_report(scenarios, score=10.0):
    return {
        "benchmark": "serving_scale",
        "version": 1,
        "profile": "tiny",
        "calibration": {"score": score},
        "scenarios": scenarios,
    }


class TestHarnessGating:
    """``speedup_vs_*`` is gated raw; ``ratio_vs_thread_*`` is informational."""

    def _report(self, speedup, ratio=2.0, fps=100.0):
        return make_serving_report(
            {
                "process_hub": {
                    "primary": "frames_per_s_2",
                    "frames_per_s_2": fps,
                    "speedup_vs_thread": speedup,
                    "ratio_vs_thread_2": ratio,
                }
            }
        )

    def test_speedup_vs_thread_collapse_regresses(self):
        comparisons = compare_reports(
            self._report(speedup=0.9), self._report(speedup=2.5), tolerance=0.3
        )
        regressed = {c.metric: c.regressed for c in comparisons}
        assert regressed["speedup_vs_thread"] is True
        assert regressed["frames_per_s_2"] is False

    def test_speedup_tolerance_is_doubled(self):
        # tolerance 0.3 -> speedup margin 0.6: a drop to 45% of baseline
        # survives, machine-to-machine ratio noise must not gate.
        comparisons = compare_reports(
            self._report(speedup=1.125), self._report(speedup=2.5), tolerance=0.3
        )
        by_metric = {c.metric: c for c in comparisons}
        assert by_metric["speedup_vs_thread"].regressed is False

    def test_ratio_curve_is_not_gated(self):
        comparisons = compare_reports(
            self._report(speedup=2.5, ratio=0.1),
            self._report(speedup=2.5, ratio=3.0),
            tolerance=0.3,
        )
        assert "ratio_vs_thread_2" not in {c.metric for c in comparisons}

    def test_build_report_records_suite_name(self):
        report = build_report(
            TINY_SERVING, {"process_hub": {"primary": "v", "v": 1.0}},
            {"score": 1.0}, benchmark="serving_scale",
        )
        assert report["benchmark"] == "serving_scale"
        assert report["profile"] == "tiny"


class TestCli:
    def test_suite_registry_names_committed_artifacts(self):
        assert SUITES["serving_scale"] == (
            "BENCH_serving_scale.json",
            "BENCH_serving_scale_quick.json",
        )

    def test_scenarios_flag_rejected_for_serving_suite(self, capsys):
        code = bench_main(
            ["--suite", "serving_scale", "--scenarios", "nn_filter"]
        )
        assert code == 2
        assert "event_path" in capsys.readouterr().err

    def test_list_mentions_serving_scale(self, capsys):
        assert bench_main(["--list"]) == 0
        assert "serving_scale" in capsys.readouterr().out

    def test_quick_run_gates_against_baseline(self, tmp_path, monkeypatch, capsys):
        # A real tiny run against an absurdly fast fabricated baseline:
        # the committed-artifact gate must fail on the speedup collapse.
        import repro.bench.serving_scale as suite

        monkeypatch.setattr(suite, "QUICK_SERVING_PROFILE", TINY_SERVING)
        baseline_path = tmp_path / "baseline.json"
        dump_report(
            make_serving_report(
                {
                    "process_hub": {
                        "primary": "frames_per_s_2",
                        "frames_per_s_2": 1e15,
                        "speedup_vs_thread": 1e6,
                    }
                }
            ),
            str(baseline_path),
        )
        out_path = tmp_path / "report.json"
        code = bench_main(
            [
                "--suite",
                "serving_scale",
                "--quick",
                "--check",
                "--baseline",
                str(baseline_path),
                "--output",
                str(out_path),
            ]
        )
        assert code == 1
        written = load_report(str(out_path))
        assert written["benchmark"] == "serving_scale"
        assert set(written["scenarios"]) == {"thread_hub", "process_hub"}
        assert "speedup_vs_thread" in capsys.readouterr().out


class TestFormatScenarios:
    def test_speedup_column_picks_speedup_vs_metrics_only(self):
        report = make_serving_report(
            {
                "process_hub": {
                    "primary": "frames_per_s_2",
                    "frames_per_s_2": 350.0,
                    "ratio_vs_thread_2": 9.9,
                    "speedup_vs_thread": 2.5,
                },
                "thread_hub": {
                    "primary": "frames_per_s_2",
                    "frames_per_s_2": 150.0,
                },
            }
        )
        table = format_scenarios(report)
        process_line = next(l for l in table.splitlines() if "process_hub" in l)
        thread_line = next(l for l in table.splitlines() if "thread_hub" in l)
        assert "2.5x" in process_line
        assert "9.9" not in process_line
        assert "—" in thread_line
