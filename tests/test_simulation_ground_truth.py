"""Tests for ground-truth sampling and serialisation."""

from __future__ import annotations

import pytest

from repro.simulation.ground_truth import (
    GroundTruthBox,
    GroundTruthFrame,
    count_ground_truth_tracks,
    ground_truth_frames_from_dict,
    ground_truth_frames_to_dict,
    sample_ground_truth,
)
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.trajectories import ConstantVelocityTrajectory
from repro.utils.geometry import BoundingBox


def _car(object_id=0, x=50.0, speed=60.0, t_start=0, t_end=5_000_000):
    template = OBJECT_TEMPLATES[ObjectClass.CAR]
    trajectory = ConstantVelocityTrajectory((x, 60.0), (speed, 0.0), t_start, t_end)
    return SceneObject(object_id=object_id, template=template, trajectory=trajectory)


class TestSampleGroundTruth:
    def test_annotates_visible_objects(self):
        frames = sample_ground_truth([_car()], [0, 66_000, 132_000], 240, 180)
        assert len(frames) == 3
        assert all(len(frame) == 1 for frame in frames)
        assert frames[0].boxes[0].object_class == "car"

    def test_inactive_objects_skipped(self):
        frames = sample_ground_truth([_car(t_start=1_000_000)], [0], 240, 180)
        assert len(frames[0]) == 0

    def test_object_outside_frame_skipped(self):
        frames = sample_ground_truth([_car(x=-500.0, speed=0.001)], [0], 240, 180)
        assert len(frames[0]) == 0

    def test_barely_entered_object_skipped(self):
        """Objects with only a sliver visible are not annotated."""
        car = _car(x=-44.0, speed=0.001)  # ~1 px of a 45 px car visible
        frames = sample_ground_truth([car], [0], 240, 180)
        assert len(frames[0]) == 0

    def test_clipped_box_when_partially_visible(self):
        car = _car(x=-10.0, speed=0.001)
        frames = sample_ground_truth([car], [0], 240, 180)
        assert len(frames[0]) == 1
        box = frames[0].boxes[0].box
        assert box.x == 0
        assert box.width == pytest.approx(OBJECT_TEMPLATES[ObjectClass.CAR].width_px - 10)

    def test_track_ids_preserved(self):
        frames = sample_ground_truth([_car(object_id=7)], [0], 240, 180)
        assert frames[0].track_ids() == [7]


class TestCountTracks:
    def test_counts_distinct_tracks(self):
        objects = [_car(object_id=0), _car(object_id=1, x=120.0)]
        frames = sample_ground_truth(objects, [0, 66_000], 240, 180)
        assert count_ground_truth_tracks(frames) == 2

    def test_empty(self):
        assert count_ground_truth_tracks([]) == 0


class TestSerialisation:
    def test_box_round_trip(self):
        box = GroundTruthBox(track_id=2, object_class="bus", box=BoundingBox(1, 2, 3, 4))
        restored = GroundTruthBox.from_dict(box.to_dict())
        assert restored == box

    def test_frame_round_trip(self):
        frame = GroundTruthFrame(
            t_us=500,
            boxes=[GroundTruthBox(1, "car", BoundingBox(0, 0, 10, 10))],
        )
        restored = GroundTruthFrame.from_dict(frame.to_dict())
        assert restored.t_us == 500
        assert restored.boxes[0].track_id == 1
        assert restored.boxes[0].box == BoundingBox(0, 0, 10, 10)

    def test_frames_list_round_trip(self):
        frames = sample_ground_truth([_car()], [0, 66_000], 240, 180)
        data = ground_truth_frames_to_dict(frames)
        restored = ground_truth_frames_from_dict(data)
        assert len(restored) == len(frames)
        assert restored[0].boxes[0].box.x == pytest.approx(frames[0].boxes[0].box.x)
