"""Tests for object templates and scene objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.trajectories import ConstantVelocityTrajectory


class TestObjectTemplates:
    def test_all_classes_have_templates(self):
        assert set(OBJECT_TEMPLATES) == set(ObjectClass)

    def test_sizes_span_an_order_of_magnitude(self):
        """The paper notes object sizes vary by ~10X within one scene."""
        widths = [t.width_px for t in OBJECT_TEMPLATES.values()]
        assert max(widths) / min(widths) >= 10

    def test_large_vehicles_have_sparser_bodies(self):
        """Plain-sided vehicles must fragment: bus body density << car."""
        bus = OBJECT_TEMPLATES[ObjectClass.BUS]
        car = OBJECT_TEMPLATES[ObjectClass.CAR]
        human = OBJECT_TEMPLATES[ObjectClass.HUMAN]
        assert bus.body_event_density < car.body_event_density
        assert car.body_event_density < human.body_event_density

    def test_scaled_template(self):
        car = OBJECT_TEMPLATES[ObjectClass.CAR]
        half = car.scaled(0.5)
        assert half.width_px == pytest.approx(car.width_px / 2)
        assert half.height_px == pytest.approx(car.height_px / 2)
        assert half.edge_event_density == car.edge_event_density

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            OBJECT_TEMPLATES[ObjectClass.CAR].scaled(0)


class TestSceneObject:
    def _object(self, speed=60.0):
        template = OBJECT_TEMPLATES[ObjectClass.CAR]
        trajectory = ConstantVelocityTrajectory((0, 50), (speed, 0), 0, 5_000_000)
        return SceneObject(object_id=3, template=template, trajectory=trajectory)

    def test_bounding_box_follows_trajectory(self):
        scene_object = self._object()
        box0 = scene_object.bounding_box(0)
        box1 = scene_object.bounding_box(1_000_000)
        assert box0.x == pytest.approx(0)
        assert box1.x == pytest.approx(60)
        assert box0.width == scene_object.width
        assert box0.height == scene_object.height

    def test_velocity_px_per_frame(self):
        scene_object = self._object(speed=60.0)
        vx, vy = scene_object.velocity_px_per_frame(100, 66_000)
        assert vx == pytest.approx(60 * 0.066, rel=0.01)
        assert vy == 0.0

    def test_is_active(self):
        scene_object = self._object()
        assert scene_object.is_active(0)
        assert not scene_object.is_active(5_000_000)

    def test_texture_offsets_cached_and_sorted(self, rng):
        scene_object = self._object()
        first = scene_object.texture_offsets(rng)
        second = scene_object.texture_offsets(rng)
        np.testing.assert_array_equal(first, second)
        assert np.all(np.diff(first) >= 0)
        assert np.all((first > 0.1) & (first < 0.9))
        assert len(first) == scene_object.template.texture_lines

    def test_object_class_property(self):
        assert self._object().object_class is ObjectClass.CAR
