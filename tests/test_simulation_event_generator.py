"""Tests for event generation from moving objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ebbi import events_to_binary_frame
from repro.events.types import is_time_sorted
from repro.simulation.event_generator import FoliageDistractor, ObjectEventGenerator
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.trajectories import ConstantVelocityTrajectory
from repro.utils.geometry import BoundingBox


def _make_object(object_class=ObjectClass.CAR, x=50.0, y=60.0, speed=60.0, object_id=0):
    template = OBJECT_TEMPLATES[object_class]
    trajectory = ConstantVelocityTrajectory((x, y), (speed, 0.0), 0, 10_000_000)
    return SceneObject(object_id=object_id, template=template, trajectory=trajectory)


class TestObjectEventGenerator:
    def test_events_fall_inside_object_box(self, rng):
        generator = ObjectEventGenerator(240, 180)
        scene_object = _make_object()
        events = generator.generate_for_object(scene_object, 0, 66_000, rng)
        assert len(events) > 0
        box = scene_object.bounding_box(33_000)
        assert events["x"].min() >= box.x - 2
        assert events["x"].max() <= box.x2 + 2
        assert events["y"].min() >= box.y - 2
        assert events["y"].max() <= box.y2 + 2
        assert is_time_sorted(events)

    def test_timestamps_within_interval(self, rng):
        generator = ObjectEventGenerator(240, 180)
        events = generator.generate_for_object(_make_object(), 100_000, 166_000, rng)
        assert events["t"].min() >= 100_000
        assert events["t"].max() < 166_000

    def test_faster_objects_emit_more_events(self, rng):
        generator = ObjectEventGenerator(240, 180)
        slow = generator.generate_for_object(_make_object(speed=10.0), 0, 66_000, rng)
        fast = generator.generate_for_object(_make_object(speed=90.0), 0, 66_000, rng)
        assert len(fast) > len(slow)

    def test_slow_objects_still_visible(self, rng):
        """Sub-pixel motion still produces some events (min_edge_activity)."""
        generator = ObjectEventGenerator(240, 180)
        events = generator.generate_for_object(_make_object(speed=2.0), 0, 66_000, rng)
        assert len(events) > 0

    def test_inactive_object_emits_nothing(self, rng):
        generator = ObjectEventGenerator(240, 180)
        scene_object = _make_object()
        events = generator.generate_for_object(scene_object, 20_000_000, 20_066_000, rng)
        assert len(events) == 0

    def test_object_outside_frame_emits_nothing(self, rng):
        generator = ObjectEventGenerator(240, 180)
        scene_object = _make_object(x=-500.0, speed=0.001)
        events = generator.generate_for_object(scene_object, 0, 66_000, rng)
        assert len(events) == 0

    def test_bus_fragments_into_sparse_interior(self, rng):
        """A bus EBBI has a mostly-empty interior (fragmentation driver)."""
        generator = ObjectEventGenerator(240, 180)
        bus = _make_object(ObjectClass.BUS, x=60.0, y=60.0, speed=50.0)
        events = generator.generate_for_object(bus, 0, 66_000, rng)
        frame = events_to_binary_frame(events, 240, 180)
        box = bus.bounding_box(33_000)
        interior = frame[
            int(box.y + 5) : int(box.y2 - 5), int(box.x + 12) : int(box.x2 - 12)
        ]
        edges = frame[int(box.y) : int(box.y2), int(box.x) : int(box.x + 4)]
        assert edges.mean() > interior.mean()

    def test_generate_for_objects_merges_sorted(self, rng):
        generator = ObjectEventGenerator(240, 180)
        objects = [_make_object(object_id=0), _make_object(x=150, object_id=1)]
        events = generator.generate_for_objects(objects, 0, 66_000, rng)
        assert is_time_sorted(events)
        assert len(events) > 0

    def test_empty_object_list(self, rng):
        generator = ObjectEventGenerator(240, 180)
        assert len(generator.generate_for_objects([], 0, 66_000, rng)) == 0

    def test_zero_interval(self, rng):
        generator = ObjectEventGenerator(240, 180)
        assert len(generator.generate_for_object(_make_object(), 100, 100, rng)) == 0


class TestFoliageDistractor:
    def test_events_confined_to_region(self, rng):
        region = BoundingBox(10, 120, 40, 40)
        distractor = FoliageDistractor(region=region, events_per_pixel_per_s=3.0)
        events = distractor.generate(240, 180, 0, 500_000, rng)
        assert len(events) > 0
        assert events["x"].min() >= 10 and events["x"].max() < 50
        assert events["y"].min() >= 120 and events["y"].max() < 160

    def test_rate_controls_count(self, rng):
        region = BoundingBox(0, 0, 50, 50)
        sparse = FoliageDistractor(region, events_per_pixel_per_s=0.5)
        dense = FoliageDistractor(region, events_per_pixel_per_s=5.0)
        sparse_count = len(sparse.generate(240, 180, 0, 1_000_000, rng))
        dense_count = len(dense.generate(240, 180, 0, 1_000_000, rng))
        assert dense_count > 3 * sparse_count

    def test_region_outside_frame(self, rng):
        distractor = FoliageDistractor(BoundingBox(500, 500, 10, 10), 5.0)
        assert len(distractor.generate(240, 180, 0, 1_000_000, rng)) == 0
