"""Tests for the Fig. 5 whole-pipeline resource comparison."""

from __future__ import annotations

import pytest

from repro.resources.comparison import (
    ebbi_kf_pipeline_resources,
    ebbiot_pipeline_resources,
    ebms_pipeline_resources,
    relative_comparison,
)
from repro.resources.params import ResourceParams


class TestPipelineTotals:
    def test_ebbiot_breakdown(self):
        resources = ebbiot_pipeline_resources()
        assert set(resources.breakdown) == {"ebbi", "rpn", "overlap_tracker"}
        assert resources.computes_per_frame == pytest.approx(
            sum(part["computes_per_frame"] for part in resources.breakdown.values())
        )
        assert resources.computes_per_frame == pytest.approx(173_844, rel=0.01)

    def test_ebbi_kf_breakdown(self):
        resources = ebbi_kf_pipeline_resources()
        assert set(resources.breakdown) == {"ebbi", "rpn", "kalman"}

    def test_ebms_breakdown(self):
        resources = ebms_pipeline_resources()
        assert set(resources.breakdown) == {"nn_filter", "ebms"}
        assert resources.computes_per_frame == pytest.approx(276_480 + 252_330)

    def test_to_dict(self):
        data = ebbiot_pipeline_resources().to_dict()
        assert data["name"] == "EBBIOT"
        assert "memory_kilobytes" in data


class TestFig5Claims:
    def test_ebbiot_is_the_reference(self):
        rows = relative_comparison()
        ebbiot = next(r for r in rows if r["pipeline"] == "EBBIOT")
        assert ebbiot["computes_relative"] == pytest.approx(1.0)
        assert ebbiot["memory_relative"] == pytest.approx(1.0)

    def test_ebms_needs_about_3x_computes(self):
        """Abstract claim: '3X less computations than ... EBMS tracking'."""
        rows = relative_comparison()
        ebms = next(r for r in rows if r["pipeline"] == "EBMS")
        assert ebms["computes_relative"] == pytest.approx(3.0, rel=0.15)

    def test_ebms_needs_about_7x_memory(self):
        """Abstract claim: '7X less memory ... than conventional noise
        filtering and EBMS tracking'."""
        rows = relative_comparison()
        ebms = next(r for r in rows if r["pipeline"] == "EBMS")
        assert ebms["memory_relative"] == pytest.approx(7.0, rel=0.15)

    def test_ebbi_kf_close_to_ebbiot_but_not_cheaper(self):
        """Fig. 5: EBBI+KF is only slightly more expensive than EBBIOT."""
        rows = relative_comparison()
        kf = next(r for r in rows if r["pipeline"] == "EBBI+KF")
        assert 1.0 <= kf["computes_relative"] < 1.1
        assert 1.0 <= kf["memory_relative"] < 1.3

    def test_custom_params_propagate(self):
        params = ResourceParams(active_pixel_fraction=0.05)
        default_rows = relative_comparison()
        custom_rows = relative_comparison(params)
        default_ebms = next(r for r in default_rows if r["pipeline"] == "EBMS")
        custom_ebms = next(r for r in custom_rows if r["pipeline"] == "EBMS")
        assert custom_ebms["computes_per_frame"] != default_ebms["computes_per_frame"]

    def test_all_rows_have_expected_keys(self):
        for row in relative_comparison():
            assert {
                "pipeline",
                "computes_per_frame",
                "memory_kilobytes",
                "computes_relative",
                "memory_relative",
            } <= set(row)
