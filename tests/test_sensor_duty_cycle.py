"""Tests for the duty-cycle timing / energy model (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.sensor.duty_cycle import DutyCycleModel, DutyCyclePhase


class TestDutyCycleModel:
    def test_paper_frame_rate(self):
        model = DutyCycleModel()
        assert model.frame_rate_hz == pytest.approx(15.15, rel=0.01)

    def test_duty_cycle_fraction(self):
        model = DutyCycleModel(
            frame_duration_us=66_000,
            wakeup_time_us=100,
            readout_time_us=2_000,
            processing_time_us=5_000,
        )
        assert model.duty_cycle == pytest.approx(7_100 / 66_000)
        assert model.sleep_time_per_cycle_us == pytest.approx(66_000 - 7_100)

    def test_active_time_must_fit_in_frame(self):
        with pytest.raises(ValueError):
            DutyCycleModel(frame_duration_us=5_000, processing_time_us=10_000)

    def test_energy_and_power(self):
        model = DutyCycleModel()
        energy = model.energy_per_cycle_uj()
        average = model.average_power_mw()
        assert energy > 0
        assert 0 < average < model.active_power_mw
        assert model.power_saving_factor() > 1.0

    def test_power_saving_grows_with_frame_duration(self):
        short = DutyCycleModel(frame_duration_us=10_000)
        long = DutyCycleModel(frame_duration_us=132_000)
        assert long.power_saving_factor() > short.power_saving_factor()

    def test_battery_life_positive_and_monotonic(self):
        model = DutyCycleModel()
        assert model.battery_life_days(1000) > 0
        assert model.battery_life_days(2000) == pytest.approx(
            2 * model.battery_life_days(1000)
        )
        with pytest.raises(ValueError):
            model.battery_life_days(0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DutyCycleModel(sleep_power_mw=-1)


class TestDutyCycleTrace:
    def test_trace_structure(self):
        model = DutyCycleModel()
        trace = model.simulate(num_frames=5)
        assert len(trace.intervals) == 5 * 4
        assert trace.total_time_us() == pytest.approx(5 * 66_000, rel=0.01)

    def test_trace_phases_cover_cycle(self):
        model = DutyCycleModel()
        trace = model.simulate(num_frames=3)
        sleep = trace.time_in_phase(DutyCyclePhase.SLEEP)
        awake = (
            trace.time_in_phase(DutyCyclePhase.WAKE)
            + trace.time_in_phase(DutyCyclePhase.READOUT)
            + trace.time_in_phase(DutyCyclePhase.PROCESS)
        )
        assert sleep + awake == pytest.approx(trace.total_time_us(), rel=1e-6)
        assert trace.active_fraction() == pytest.approx(model.duty_cycle, rel=0.05)

    def test_trace_intervals_are_contiguous(self):
        trace = DutyCycleModel().simulate(num_frames=2)
        for a, b in zip(trace.intervals, trace.intervals[1:]):
            assert a.t_end_us == pytest.approx(b.t_start_us)

    def test_invalid_num_frames(self):
        with pytest.raises(ValueError):
            DutyCycleModel().simulate(0)

    def test_as_rows(self):
        rows = DutyCycleModel().simulate(1).as_rows()
        assert len(rows) == 4
        assert {row["phase"] for row in rows} == {"sleep", "wake", "readout", "process"}

    def test_empty_trace_metrics(self):
        from repro.sensor.duty_cycle import DutyCycleTrace

        trace = DutyCycleTrace()
        assert trace.total_time_us() == 0.0
        assert trace.active_fraction() == 0.0


class TestFrameDurationSweep:
    def test_sweep_reports_all_durations(self):
        model = DutyCycleModel()
        rows = model.compare_frame_durations([33_000, 66_000, 132_000])
        assert len(rows) == 3
        assert rows[1]["frame_duration_us"] == 66_000

    def test_duty_cycle_decreases_with_longer_frames(self):
        model = DutyCycleModel()
        rows = model.compare_frame_durations([33_000, 66_000, 132_000])
        duty_cycles = [row["duty_cycle"] for row in rows]
        assert duty_cycles[0] > duty_cycles[1] > duty_cycles[2]
