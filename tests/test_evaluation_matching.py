"""Tests for per-frame IoU matching."""

from __future__ import annotations

import pytest

from repro.evaluation.matching import match_frame, match_observations
from repro.simulation.ground_truth import GroundTruthBox
from repro.trackers.base import TrackObservation
from repro.utils.geometry import BoundingBox


def box(x, y, w=20, h=20):
    return BoundingBox(x, y, w, h)


class TestMatchFrame:
    def test_perfect_match(self):
        result = match_frame([box(10, 10)], [box(10, 10)], iou_threshold=0.5)
        assert result.num_true_positives == 1
        assert result.num_false_positives == 0
        assert result.num_false_negatives == 0

    def test_below_threshold_not_counted(self):
        result = match_frame([box(10, 10)], [box(25, 10)], iou_threshold=0.5)
        assert result.num_true_positives == 0
        assert result.num_false_positives == 1
        assert result.num_false_negatives == 1
        # The pair still appears in matched_pairs for diagnostics.
        assert len(result.matched_pairs) == 1

    def test_missed_ground_truth(self):
        result = match_frame([box(10, 10)], [box(10, 10), box(100, 100)], 0.5)
        assert result.num_true_positives == 1
        assert result.num_false_negatives == 1

    def test_spurious_tracker_box(self):
        result = match_frame([box(10, 10), box(200, 100)], [box(10, 10)], 0.5)
        assert result.num_true_positives == 1
        assert result.num_false_positives == 1

    def test_empty_inputs(self):
        result = match_frame([], [], 0.5)
        assert result.num_true_positives == 0
        empty_tracker = match_frame([], [box(0, 0)], 0.5)
        assert empty_tracker.num_false_negatives == 1
        empty_gt = match_frame([box(0, 0)], [], 0.5)
        assert empty_gt.num_false_positives == 1

    def test_one_to_one_assignment(self):
        """Two tracker boxes cannot both claim the same ground-truth box."""
        result = match_frame([box(10, 10), box(12, 10)], [box(10, 10)], 0.3)
        assert result.num_true_positives == 1
        assert result.num_false_positives == 1

    def test_optimal_assignment_on_crossover(self):
        trackers = [box(0, 0, 30, 30), box(12, 0, 30, 30)]
        ground_truth = [box(6, 0, 30, 30), box(20, 0, 30, 30)]
        result = match_frame(trackers, ground_truth, iou_threshold=0.3)
        assert result.num_true_positives == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            match_frame([], [], iou_threshold=0.0)
        with pytest.raises(ValueError):
            match_frame([], [], iou_threshold=1.1)


class TestMatchObservations:
    def test_wrapper_matches_raw_boxes(self):
        observations = [TrackObservation(track_id=1, box=box(10, 10), t_us=0)]
        ground_truth = [GroundTruthBox(track_id=5, object_class="car", box=box(10, 10))]
        result = match_observations(observations, ground_truth, 0.5)
        assert result.num_true_positives == 1
