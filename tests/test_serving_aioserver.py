"""Tests for the asyncio JSONL front door, fronting both hub flavours.

The asyncio server promises byte-compatibility with the threaded one:
every test here drives it through the unchanged :mod:`repro.serving.client`
helpers, which speak the same protocol as production sensors.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.obs import parse_prometheus_text, sample_value
from repro.serving import HubConfig, scrape_metrics, stream_recording
from repro.serving.aioserver import AsyncTrackingServer
from repro.serving.hub import TrackingHub
from repro.serving.process_hub import ProcessTrackingHub

HUBS = {"thread": TrackingHub, "process": ProcessTrackingHub}


def _moving_block_stream(seed: int, num_frames: int = 10) -> EventStream:
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        x0 = 20 + 3 * frame_index
        t = frame_index * 66_000 + 10_000
        for dy in range(6):
            for dx in range(6):
                xs.append(x0 + dx)
                ys.append(70 + dy)
                ts.append(t + int(rng.integers(0, 40_000)))
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, 240, 180)


class TestAsyncServer:
    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_round_trip_matches_batch_pipeline(self, kind):
        stream = _moving_block_stream(seed=1)
        expected = EbbiotPipeline(EbbiotConfig()).process_stream(stream)
        hub = HUBS[kind](HubConfig(num_workers=2))
        with AsyncTrackingServer(hub=hub) as server:
            host, port = server.address
            frames, summary = stream_recording(host, port, "cam", stream)
        assert summary["name"] == "cam"
        assert summary["num_events"] == len(stream)
        assert summary["num_frames"] == expected.num_frames
        assert len(frames) == expected.num_frames
        wire_tracks = [track for frame in frames for track in frame["tracks"]]
        assert len(wire_tracks) == expected.total_track_observations()
        for wire, obs in zip(wire_tracks, expected.track_history.observations):
            assert wire["track_id"] == obs.track_id
            assert wire["x"] == pytest.approx(obs.box.x)

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_eight_concurrent_sensors(self, kind):
        streams = {f"cam-{i}": _moving_block_stream(seed=i) for i in range(8)}
        hub = HUBS[kind](HubConfig(num_workers=4))
        with AsyncTrackingServer(hub=hub) as server:
            host, port = server.address
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = {
                    sensor_id: pool.submit(
                        stream_recording, host, port, sensor_id, stream
                    )
                    for sensor_id, stream in streams.items()
                }
                outcomes = {sid: f.result(timeout=60) for sid, f in futures.items()}
            telemetry = server.hub.telemetry_dict()

        assert telemetry["totals"]["num_sensors"] == 8
        for sensor_id, stream in streams.items():
            frames, summary = outcomes[sensor_id]
            assert summary["name"] == sensor_id
            assert summary["num_events"] == len(stream)
            assert len(frames) == summary["num_frames"] > 0

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_metrics_scrape_over_the_wire(self, kind):
        stream = _moving_block_stream(seed=2)
        hub = HUBS[kind](HubConfig(num_workers=2))
        with AsyncTrackingServer(hub=hub) as server:
            host, port = server.address
            stream_recording(host, port, "cam", stream)
            samples = parse_prometheus_text(scrape_metrics(host, port))
        assert sample_value(
            samples, "repro_sensor_events_received_total", sensor="cam"
        ) == float(len(stream))
        for shard in ("0", "1"):
            assert (
                sample_value(samples, "repro_shard_sensors", shard=shard)
                is not None
            )

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_finish_after_hub_side_removal_replies_error(self, kind):
        from repro.serving import ProtocolError, SensorClient

        hub = HUBS[kind](HubConfig(num_workers=1))
        with AsyncTrackingServer(hub=hub) as server:
            host, port = server.address
            with SensorClient(host, port, "cam") as client:
                # Race the connection: the hub forgets the sensor while the
                # client still believes it is live.  The server must answer
                # the stray finish with an error instead of dropping the
                # connection without a reply.
                server.hub.close_sensor("cam", timeout=60.0)
                server.hub.remove_sensor("cam")
                with pytest.raises(ProtocolError, match="not registered"):
                    client.finish()
                assert "repro_" in client.request_metrics()

    def test_duplicate_sensor_id_rejected(self):
        from repro.serving import ProtocolError, SensorClient

        with AsyncTrackingServer(hub_config=HubConfig(num_workers=1)) as server:
            host, port = server.address
            with SensorClient(host, port, "cam"):
                with pytest.raises(ProtocolError):
                    SensorClient(host, port, "cam")

    def test_stop_is_idempotent_and_port_reusable(self):
        server = AsyncTrackingServer(hub_config=HubConfig(num_workers=1))
        server.start()
        server.stop()
        server.stop()


class TestServingCliMatrix:
    @pytest.mark.parametrize(
        "extra",
        [
            ["--hub", "process", "--front-door", "asyncio"],
            ["--hub", "thread", "--front-door", "threaded"],
        ],
    )
    def test_demo_runs_on_hub_and_front_door(self, extra, capsys):
        from repro.serving.__main__ import main

        exit_code = main(
            ["--sensors", "2", "--duration", "0.4", "--batch-us", "33000"] + extra
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "telemetry:" in captured.out

    def test_cli_rejects_bad_ring_size(self, capsys):
        from repro.serving.__main__ import main

        assert main(["--ring-kib", "0"]) == 2
