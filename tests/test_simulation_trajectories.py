"""Tests for the trajectory models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simulation.trajectories import (
    ConstantVelocityTrajectory,
    PiecewiseLinearTrajectory,
    StopAndGoTrajectory,
    crossing_trajectory,
)


class TestConstantVelocityTrajectory:
    def test_position_at_start_and_later(self):
        trajectory = ConstantVelocityTrajectory((10, 20), (30, -10), 0, 2_000_000)
        assert trajectory.position(0) == (10, 20)
        x, y = trajectory.position(1_000_000)
        assert x == pytest.approx(40)
        assert y == pytest.approx(10)

    def test_velocity_units(self):
        trajectory = ConstantVelocityTrajectory((0, 0), (60, 0), 0, 1_000_000)
        vx, vy = trajectory.velocity(500_000)
        assert vx == pytest.approx(60e-6)
        assert vy == 0.0

    def test_active_interval(self):
        trajectory = ConstantVelocityTrajectory((0, 0), (1, 0), 100, 200)
        assert trajectory.is_active(100)
        assert trajectory.is_active(150)
        assert not trajectory.is_active(200)
        assert not trajectory.is_active(50)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ConstantVelocityTrajectory((0, 0), (1, 0), 100, 100)

    @given(st.integers(0, 10**7), st.floats(-100, 100), st.floats(-100, 100))
    def test_position_is_linear_in_time(self, t, vx, vy):
        trajectory = ConstantVelocityTrajectory((5, 5), (vx, vy), 0, 10**7 + 1)
        x, y = trajectory.position(t)
        assert x == pytest.approx(5 + vx * t * 1e-6, abs=1e-6)
        assert y == pytest.approx(5 + vy * t * 1e-6, abs=1e-6)


class TestStopAndGoTrajectory:
    def _trajectory(self):
        return StopAndGoTrajectory(
            start_position=(0, 50),
            speed_px_per_s=60.0,
            stop_position_x=60.0,
            stop_duration_us=1_000_000,
            t_start=0,
            t_end=10_000_000,
        )

    def test_moves_then_stops_then_moves(self):
        trajectory = self._trajectory()
        # Reaches the stop after 1 s.
        assert trajectory.position(500_000)[0] == pytest.approx(30.0)
        assert trajectory.position(1_000_000)[0] == pytest.approx(60.0)
        # During the stop the position is pinned and velocity is zero.
        assert trajectory.position(1_500_000)[0] == pytest.approx(60.0)
        assert trajectory.velocity(1_500_000) == (0.0, 0.0)
        # After the stop, motion resumes.
        assert trajectory.position(2_500_000)[0] == pytest.approx(90.0)
        assert trajectory.velocity(2_500_000)[0] > 0

    def test_vertical_position_constant(self):
        trajectory = self._trajectory()
        for t in (0, 1_200_000, 3_000_000):
            assert trajectory.position(t)[1] == 50

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StopAndGoTrajectory((0, 0), 0.0, 10, 100, 0, 1000)
        with pytest.raises(ValueError):
            # Stop position behind the start for a rightward mover.
            StopAndGoTrajectory((50, 0), 10.0, 10, 100, 0, 10**7)
        with pytest.raises(ValueError):
            StopAndGoTrajectory((0, 0), 10.0, 10, 100, 100, 100)

    def test_leftward_stop_and_go(self):
        trajectory = StopAndGoTrajectory(
            start_position=(100, 10),
            speed_px_per_s=-50.0,
            stop_position_x=50.0,
            stop_duration_us=500_000,
            t_start=0,
            t_end=10_000_000,
        )
        assert trajectory.position(1_000_000)[0] == pytest.approx(50.0)
        assert trajectory.position(2_000_000)[0] < 50.0


class TestPiecewiseLinearTrajectory:
    def test_interpolation(self):
        trajectory = PiecewiseLinearTrajectory([(0, 0, 0), (1_000_000, 10, 20)])
        x, y = trajectory.position(500_000)
        assert x == pytest.approx(5)
        assert y == pytest.approx(10)

    def test_holds_endpoints(self):
        trajectory = PiecewiseLinearTrajectory([(100, 1, 2), (200, 3, 4)])
        assert trajectory.position(0) == (1, 2)
        assert trajectory.position(500) == (3, 4)

    def test_velocity_per_segment(self):
        trajectory = PiecewiseLinearTrajectory([(0, 0, 0), (100, 10, 0), (200, 10, 10)])
        assert trajectory.velocity(50)[0] == pytest.approx(0.1)
        assert trajectory.velocity(150)[1] == pytest.approx(0.1)
        assert trajectory.velocity(500) == (0.0, 0.0)

    def test_requires_two_waypoints_and_increasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTrajectory([(0, 0, 0)])
        with pytest.raises(ValueError):
            PiecewiseLinearTrajectory([(0, 0, 0), (0, 1, 1)])


class TestCrossingTrajectory:
    def test_left_to_right_covers_full_width(self):
        trajectory = crossing_trajectory(240, 50, 60.0, 0, object_width=40, direction=1)
        start_x = trajectory.position(trajectory.t_start_us)[0]
        end_x = trajectory.position(trajectory.t_end_us)[0]
        assert start_x == pytest.approx(-40)
        assert end_x >= 240

    def test_right_to_left(self):
        trajectory = crossing_trajectory(240, 50, 60.0, 0, object_width=40, direction=-1)
        assert trajectory.position(trajectory.t_start_us)[0] == pytest.approx(240)
        assert trajectory.velocity(0)[0] < 0

    def test_duration_scales_with_speed(self):
        slow = crossing_trajectory(240, 50, 30.0, 0, 40)
        fast = crossing_trajectory(240, 50, 60.0, 0, 40)
        assert (slow.t_end_us - slow.t_start_us) == pytest.approx(
            2 * (fast.t_end_us - fast.t_start_us), rel=0.01
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            crossing_trajectory(240, 50, 60.0, 0, 40, direction=0)
        with pytest.raises(ValueError):
            crossing_trajectory(240, 50, -5.0, 0, 40)
