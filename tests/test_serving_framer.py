"""Tests for the online framer (live windowing with bounded disorder)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.stream import EventBuffer, EventStream
from repro.events.types import make_packet
from repro.serving.framer import OnlineFramer

FRAME_US = 66_000


def _packet(ts, x=10, y=10):
    ts = list(ts)
    return make_packet([x] * len(ts), [y] * len(ts), ts, [1] * len(ts))


class TestEventBuffer:
    def test_append_and_drain_sorted(self):
        buffer = EventBuffer()
        buffer.append(_packet([50, 10]))
        buffer.append(_packet([30]))
        assert len(buffer) == 3
        assert buffer.max_seen_t == 50
        drained = buffer.drain_until(40)
        assert drained["t"].tolist() == [10, 30]
        assert len(buffer) == 1
        assert buffer.drain_all()["t"].tolist() == [50]
        assert len(buffer) == 0

    def test_empty_drain(self):
        buffer = EventBuffer()
        assert len(buffer.drain_until(100)) == 0
        assert len(buffer.drain_all()) == 0
        assert buffer.max_seen_t is None

    def test_drain_keeps_remainder_across_appends(self):
        buffer = EventBuffer()
        buffer.append(_packet([100, 200]))
        buffer.drain_until(150)
        buffer.append(_packet([120]))  # older than the retained 200
        drained = buffer.drain_all()
        assert drained["t"].tolist() == [120, 200]


class TestOnlineFramer:
    def test_in_order_batches_match_frame_index(self):
        rng = np.random.default_rng(0)
        ts = np.sort(rng.integers(0, 500_000, size=2_000))
        packet = make_packet(
            rng.integers(0, 240, 2_000), rng.integers(0, 180, 2_000), ts,
            np.where(rng.random(2_000) < 0.5, 1, -1),
        )
        stream = EventStream(packet.copy())
        index = stream.frame_index(FRAME_US, align_to_zero=True)

        framer = OnlineFramer(FRAME_US, reorder_slack_us=1_000)
        windows = []
        for lo in range(0, 500_000, 20_000):
            hi = lo + 20_000
            i0, i1 = np.searchsorted(packet["t"], [lo, hi])
            windows.extend(framer.append(packet[i0:i1]))
        windows.extend(framer.flush())

        assert len(windows) == index.num_frames
        for window, (t_start, t_end, events) in zip(windows, index):
            assert window.t_start_us == t_start
            assert window.t_end_us == t_end
            assert window.num_events == len(events)
            assert sorted(window.events["t"].tolist()) == sorted(events["t"].tolist())

    def test_window_closes_only_past_watermark(self):
        framer = OnlineFramer(FRAME_US, reorder_slack_us=10_000)
        assert framer.append(_packet([1_000])) == []
        # Watermark = 70k - 10k = 60k < 66k: window 0 still open.
        assert framer.append(_packet([70_000])) == []
        # Watermark = 80k - 10k = 70k >= 66k: window 0 closes.
        windows = framer.append(_packet([80_000]))
        assert [w.frame_index for w in windows] == [0]
        assert windows[0].num_events == 1

    def test_out_of_order_within_slack_lands_in_correct_window(self):
        framer = OnlineFramer(FRAME_US, reorder_slack_us=10_000)
        framer.append(_packet([68_000]))  # later-stamped event arrives first
        framer.append(_packet([60_000]))  # belongs to window 0, 8 ms late
        windows = framer.flush()
        assert [w.num_events for w in windows] == [1, 1]
        assert windows[0].events["t"].tolist() == [60_000]
        assert framer.late_events == 0

    def test_event_beyond_slack_is_dropped_and_counted(self):
        framer = OnlineFramer(FRAME_US, reorder_slack_us=1_000)
        framer.append(_packet([100_000]))  # closes window 0 (watermark 99k)
        framer.append(_packet([10_000]))  # window 0 already closed -> late
        assert framer.late_events == 1
        windows = framer.flush()
        assert sum(w.num_events for w in windows) == 1

    def test_empty_gap_windows_are_emitted(self):
        framer = OnlineFramer(FRAME_US, reorder_slack_us=0)
        framer.append(_packet([5_000]))
        windows = framer.append(_packet([5 * FRAME_US + 10]))
        # Windows 0..4 close (watermark = 330 010); 1-4 are empty.
        assert [w.frame_index for w in windows] == [0, 1, 2, 3, 4]
        assert [w.num_events for w in windows] == [1, 0, 0, 0, 0]

    def test_flush_on_empty_framer(self):
        framer = OnlineFramer(FRAME_US)
        assert framer.flush() == []
        assert framer.frames_closed == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OnlineFramer(frame_duration_us=0)
        with pytest.raises(ValueError):
            OnlineFramer(reorder_slack_us=-1)

    def test_counters(self):
        framer = OnlineFramer(FRAME_US, reorder_slack_us=0)
        framer.append(_packet([1, 2, 3]))
        assert framer.events_accepted == 3
        assert framer.events_pending == 3
        framer.flush()
        assert framer.events_pending == 0
        assert framer.frames_closed == 1
