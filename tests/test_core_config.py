"""Tests for the EBBIOT pipeline configuration."""

from __future__ import annotations

import pytest

from repro.core.config import EbbiotConfig


class TestEbbiotConfig:
    def test_paper_defaults(self):
        config = EbbiotConfig.paper_defaults()
        assert config.width == 240
        assert config.height == 180
        assert config.frame_duration_us == 66_000
        assert config.median_patch_size == 3
        assert config.downsample_x == 6
        assert config.downsample_y == 3
        assert config.max_trackers == 8
        assert config.occlusion_lookahead_frames == 2

    def test_derived_properties(self):
        config = EbbiotConfig()
        assert config.frame_rate_hz == pytest.approx(15.15, rel=0.01)
        assert config.downsampled_width == 40
        assert config.downsampled_height == 60

    def test_even_patch_rejected(self):
        with pytest.raises(ValueError):
            EbbiotConfig(median_patch_size=4)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            EbbiotConfig(overlap_threshold=0.0)
        with pytest.raises(ValueError):
            EbbiotConfig(overlap_threshold=1.5)
        with pytest.raises(ValueError):
            EbbiotConfig(prediction_weight=1.5)
        with pytest.raises(ValueError):
            EbbiotConfig(histogram_threshold=0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            EbbiotConfig(width=0)
        with pytest.raises(ValueError):
            EbbiotConfig(downsample_x=500)
        with pytest.raises(ValueError):
            EbbiotConfig(max_trackers=0)

    def test_invalid_negative_counts(self):
        with pytest.raises(ValueError):
            EbbiotConfig(occlusion_lookahead_frames=-1)
        with pytest.raises(ValueError):
            EbbiotConfig(min_track_age_frames=-1)
        with pytest.raises(ValueError):
            EbbiotConfig(max_missed_frames=-1)

    def test_tracker_backend_field(self):
        # The default is the paper's overlap tracker; the registry names
        # are accepted and anything else is rejected at construction.
        assert EbbiotConfig().tracker == "overlap"
        assert EbbiotConfig.paper_defaults().tracker == "overlap"
        for name in ("overlap", "kalman", "ebms"):
            assert EbbiotConfig(tracker=name).tracker == name
        with pytest.raises(ValueError, match="unknown tracker backend"):
            EbbiotConfig(tracker="centroid")
