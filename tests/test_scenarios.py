"""Tests for the scenario-matrix robustness suite (``repro.scenarios``)."""

import json
from dataclasses import replace

import pytest

from repro.core.config import EbbiotConfig
from repro.scenarios import __main__ as cli
from repro.scenarios.compare import (
    compare_quality_reports,
    missing_cells,
)
from repro.scenarios.library import (
    MATRICES,
    SCENARIO_LIBRARY,
    DutyCycleSpec,
    MatrixSpec,
    NoiseRegime,
    ScenarioSpec,
    build_scenario_recordings,
    scenario_jobs,
)
from repro.scenarios.matrix import (
    MATRIX_VERSION,
    SUITE_NAME,
    apply_config_overrides,
    run_cell,
    run_matrix,
)
from repro.runtime.runner import RunnerConfig, StreamRunner
from repro.utils.geometry import BoundingBox

#: One deterministic cell at smoke size: the scripted crossing scene always
#: contains its two objects, so every metric is exercised.
TINY_MATRIX = MatrixSpec(
    name="quick",
    scenarios=("occlusion-cross",),
    trackers=("overlap",),
    num_scenes=1,
    duration_s=1.5,
)

#: Quality metrics that must be bit-stable run to run (everything except
#: the wall-clock latency).
DETERMINISTIC_METRICS = (
    "mota",
    "motp",
    "precision",
    "recall",
    "num_matches",
    "num_misses",
    "num_false_positives",
    "num_id_switches",
    "num_ground_truth_boxes",
    "num_frames",
    "num_tracks",
)


def make_report(cells, score=50.0, matrix="quick", suite=SUITE_NAME):
    """A minimal matrix report for compare-layer tests (no rendering)."""
    return {
        "suite": suite,
        "version": MATRIX_VERSION,
        "matrix": matrix,
        "config": {},
        "calibration": {"score": score},
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# scenario grammar
# ---------------------------------------------------------------------------


class TestScenarioGrammar:
    def test_library_names_match_keys(self):
        for name, spec in SCENARIO_LIBRARY.items():
            assert spec.name == name

    def test_matrices_reference_known_scenarios(self):
        for matrix in MATRICES.values():
            for scenario in matrix.scenarios:
                assert scenario in SCENARIO_LIBRARY

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            MatrixSpec(name="bad", scenarios=("nope",), trackers=("overlap",))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(name="x", description="", kind="volcano")

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            NoiseRegime(name="bad", background_rate_hz_per_pixel=-1.0)

    def test_scaled_shrinks_but_never_grows_scenes(self):
        spec = SCENARIO_LIBRARY["density-urban"]
        assert spec.scaled(1, 2.0).num_scenes == 1
        assert spec.scaled(99, 2.0).num_scenes == spec.num_scenes
        assert spec.scaled(1, 2.0).duration_s == 2.0

    def test_pipeline_config_carries_duty_and_threshold(self):
        spec = SCENARIO_LIBRARY["duty-cycled-roe"]
        config = spec.pipeline_config()
        assert config.duty_cycle is not None
        assert config.duty_cycle.frame_duration_us == config.frame_duration_us
        assert config.roe_max_overlap_fraction == spec.roe_max_overlap_fraction

    def test_duty_model_follows_frame_duration_override(self):
        spec = SCENARIO_LIBRARY["duty-cycled-roe"]
        base = EbbiotConfig(frame_duration_us=33_000)
        assert spec.pipeline_config(base).duty_cycle.frame_duration_us == 33_000

    def test_scenario_jobs_layer_declared_roe_boxes(self):
        spec = replace(
            SCENARIO_LIBRARY["duty-cycled-roe"].scaled(1, 1.5),
            roe_boxes=(BoundingBox(0, 0, 10, 10), BoundingBox(5, 0, 10, 10)),
        )
        recordings = build_scenario_recordings(spec)
        jobs = scenario_jobs(spec, "overlap", recordings=recordings)
        assert len(jobs) == 1
        declared = jobs[0].config.roe_boxes[-2:]
        assert [(b.x, b.width) for b in declared] == [(0, 10), (5, 10)]


# ---------------------------------------------------------------------------
# determinism (satellite: same seed => byte-identical packets, same metrics)
# ---------------------------------------------------------------------------


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", ["occlusion-cross", "rain-storm"])
    def test_renders_are_byte_identical(self, name):
        spec = SCENARIO_LIBRARY[name].scaled(1, 1.5)
        first = build_scenario_recordings(spec)
        second = build_scenario_recordings(spec)
        assert [r.name for r in first] == [r.name for r in second]
        for a, b in zip(first, second):
            assert a.stream.events.tobytes() == b.stream.events.tobytes()

    def test_pooled_metrics_identical_across_runs_and_executors(self):
        spec = SCENARIO_LIBRARY["occlusion-cross"].scaled(1, 1.5)
        recordings = build_scenario_recordings(spec)
        serial = run_cell(spec, "overlap", recordings, executor="serial")
        threaded = run_cell(spec, "overlap", recordings, executor="thread")
        again = run_cell(spec, "overlap", recordings, executor="serial")
        for metric in DETERMINISTIC_METRICS:
            assert serial[metric] == threaded[metric] == again[metric], metric


# ---------------------------------------------------------------------------
# duty-cycled + ROE fleet, end to end (satellite)
# ---------------------------------------------------------------------------


class TestDutyCycledRoeFleet:
    def _run(self, spec, recordings):
        jobs = scenario_jobs(spec, "overlap", recordings=recordings)
        return StreamRunner(RunnerConfig(executor="serial")).run(jobs)

    def test_roe_drops_covered_proposals_and_duty_is_reported(self):
        base_spec = SCENARIO_LIBRARY["duty-cycled-roe"].scaled(1, 2.0)
        recordings = build_scenario_recordings(base_spec)

        open_batch = self._run(replace(base_spec, roe_boxes=()), recordings)
        assert sum(r.num_proposals for r in open_batch.recordings) > 0

        # An operator who excludes the whole frame gets no proposals at
        # all: the fleet path really routes declared boxes into the ROE.
        sealed = replace(
            base_spec, roe_boxes=(BoundingBox(0.0, 0.0, 240.0, 180.0),)
        )
        sealed_batch = self._run(sealed, recordings)
        assert sum(r.num_proposals for r in sealed_batch.recordings) == 0
        assert sum(r.num_tracks for r in sealed_batch.recordings) == 0

        # Wake/sleep accounting rides on every result either way.
        model = base_spec.duty.model(66_000.0)
        for batch in (open_batch, sealed_batch):
            for result in batch.recordings:
                assert result.duty is not None
                assert result.duty.num_frames == result.num_frames
                assert result.duty.active_fraction == pytest.approx(
                    model.duty_cycle
                )
                assert result.duty.sleep_fraction == pytest.approx(
                    1.0 - model.duty_cycle
                )
            summary = batch.fleet_summary()
            assert summary["mean_duty_active_fraction"] == pytest.approx(
                model.duty_cycle
            )

    def test_duty_free_scenario_reports_no_duty(self):
        spec = SCENARIO_LIBRARY["occlusion-cross"].scaled(1, 1.5)
        batch = self._run(spec, build_scenario_recordings(spec))
        assert all(r.duty is None for r in batch.recordings)
        assert batch.fleet_summary()["mean_duty_active_fraction"] is None


# ---------------------------------------------------------------------------
# config overrides (--set)
# ---------------------------------------------------------------------------


class TestApplyConfigOverrides:
    def test_types_follow_field_declarations(self):
        config = apply_config_overrides(
            EbbiotConfig(),
            {"overlap_threshold": "0.9", "max_trackers": "4", "tracker": "kalman"},
        )
        assert config.overlap_threshold == 0.9
        assert config.max_trackers == 4
        assert config.tracker == "kalman"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline config field"):
            apply_config_overrides(EbbiotConfig(), {"warp_speed": "9"})

    def test_unparsable_value_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            apply_config_overrides(EbbiotConfig(), {"max_trackers": "many"})

    def test_non_scalar_field_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            apply_config_overrides(EbbiotConfig(), {"roe_boxes": "[]"})

    def test_no_overrides_returns_base(self):
        base = EbbiotConfig()
        assert apply_config_overrides(base, {}) is base


# ---------------------------------------------------------------------------
# compare layer (satellite: direction-aware, negative baselines, missing)
# ---------------------------------------------------------------------------


class TestCompareQualityReports:
    CELL = "occlusion-cross/overlap"

    def _cell(self, mota=0.8, latency=2.0, **extra):
        cell = {
            "mota": mota,
            "motp": 0.6,
            "precision": 0.9,
            "recall": 0.9,
            "latency_ms_per_frame": latency,
        }
        cell.update(extra)
        return cell

    def _compare(self, current_cell, baseline_cell, **kwargs):
        return compare_quality_reports(
            make_report({self.CELL: current_cell}),
            make_report({self.CELL: baseline_cell}),
            **kwargs,
        )

    def _by_metric(self, comparisons):
        return {c.metric: c for c in comparisons}

    def test_quality_drop_beyond_budget_regresses(self):
        by = self._by_metric(
            self._compare(self._cell(mota=0.70), self._cell(mota=0.80), tolerance=0.05)
        )
        assert by["mota"].regressed
        assert by["mota"].direction == "up"
        assert not by["precision"].regressed

    def test_quality_drop_within_budget_passes(self):
        by = self._by_metric(
            self._compare(self._cell(mota=0.76), self._cell(mota=0.80), tolerance=0.05)
        )
        assert not by["mota"].regressed

    def test_negative_mota_baseline_gates_sanely(self):
        # ebms-style baseline: MOTA -6.  The margin scales with |baseline|
        # (0.05 * 6 = 0.3): a small wobble passes, a real collapse fails,
        # and an *improvement* toward zero never regresses — the naive
        # ``baseline * (1 - tol)`` inequality would flip here.
        baseline = self._cell(mota=-6.0)
        assert not self._by_metric(
            self._compare(self._cell(mota=-6.2), baseline, tolerance=0.05)
        )["mota"].regressed
        assert self._by_metric(
            self._compare(self._cell(mota=-7.0), baseline, tolerance=0.05)
        )["mota"].regressed
        assert not self._by_metric(
            self._compare(self._cell(mota=-1.0), baseline, tolerance=0.05)
        )["mota"].regressed

    def test_near_zero_baseline_uses_absolute_budget(self):
        # floor=1.0: a 0.02 drop from a 0.01 baseline stays inside a 0.05
        # absolute budget instead of tripping a vanishing relative margin.
        by = self._by_metric(
            self._compare(self._cell(mota=-0.01), self._cell(mota=0.01), tolerance=0.05)
        )
        assert not by["mota"].regressed

    def test_latency_is_lower_is_better(self):
        by = self._by_metric(
            self._compare(
                self._cell(latency=5.0), self._cell(latency=2.0), latency_tolerance=1.0
            )
        )
        assert by["latency_ms_per_frame"].regressed
        assert by["latency_ms_per_frame"].direction == "down"
        # Faster is never a regression.
        by = self._by_metric(
            self._compare(
                self._cell(latency=0.5), self._cell(latency=2.0), latency_tolerance=1.0
            )
        )
        assert not by["latency_ms_per_frame"].regressed

    def test_latency_normalized_by_machine_speed(self):
        # Twice the latency on a machine half as fast is the same code
        # speed: normalization cancels and nothing regresses.
        current = make_report({self.CELL: self._cell(latency=4.0)}, score=25.0)
        baseline = make_report({self.CELL: self._cell(latency=2.0)}, score=50.0)
        by = self._by_metric(
            compare_quality_reports(current, baseline, latency_tolerance=0.25)
        )
        assert not by["latency_ms_per_frame"].regressed
        assert by["latency_ms_per_frame"].normalized

    def test_missing_cells_listed_in_baseline_order(self):
        current = make_report({self.CELL: self._cell()})
        baseline = make_report(
            {
                self.CELL: self._cell(),
                "rain-storm/overlap": self._cell(),
                "rain-storm/kalman": self._cell(),
            }
        )
        assert missing_cells(current, baseline) == [
            "rain-storm/overlap",
            "rain-storm/kalman",
        ]
        # Extra current-side cells are new coverage, not a loss.
        assert missing_cells(baseline, current) == []

    def test_non_matrix_report_rejected(self):
        bench_like = make_report({self.CELL: self._cell()}, suite="event_path")
        with pytest.raises(ValueError, match="scenario-matrix"):
            compare_quality_reports(make_report({}), bench_like)
        with pytest.raises(ValueError, match="scenario-matrix"):
            compare_quality_reports(bench_like, make_report({}))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            self._compare(self._cell(), self._cell(), tolerance=-0.1)


# ---------------------------------------------------------------------------
# matrix runner
# ---------------------------------------------------------------------------


class TestRunMatrix:
    def test_report_shape_and_overrides_recorded(self):
        report = run_matrix(
            TINY_MATRIX,
            executor="serial",
            config_overrides={"max_trackers": "4"},
        )
        assert report["suite"] == SUITE_NAME
        assert report["version"] == MATRIX_VERSION
        assert report["matrix"] == "quick"
        assert list(report["cells"]) == ["occlusion-cross/overlap"]
        cell = report["cells"]["occlusion-cross/overlap"]
        assert cell["num_ground_truth_boxes"] > 0
        assert cell["latency_ms_per_frame"] > 0
        assert report["config"]["overrides"] == {"max_trackers": "4"}
        assert report["calibration"]["score"] > 0
        json.dumps(report)  # must be serialisable as-is


# ---------------------------------------------------------------------------
# CLI (satellite: quick gate round-trip, perturbation fails with a named cell)
# ---------------------------------------------------------------------------


@pytest.fixture()
def tiny_cli(monkeypatch, tmp_path):
    """CLI wired to the tiny matrix, running in a scratch directory."""
    monkeypatch.setattr(cli, "MATRICES", {"quick": TINY_MATRIX})
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestScenariosCli:
    def test_list_exits_zero(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "matrix full" in out
        assert "duty-cycled-roe" in out

    def test_quick_conflicts_with_explicit_full_matrix(self, capsys):
        assert cli.main(["--quick", "--matrix", "full"]) == 2

    def test_bad_set_syntax_exits_2(self, tiny_cli, capsys):
        assert cli.main(["--quick", "--set", "overlap_threshold"]) == 2
        assert "FIELD=VALUE" in capsys.readouterr().err

    def test_unknown_set_field_exits_2(self, tiny_cli, capsys):
        assert cli.main(["--quick", "--set", "warp_speed=9"]) == 2
        assert "unknown pipeline config field" in capsys.readouterr().err

    def test_check_without_baseline_exits_2(self, tiny_cli, capsys):
        assert cli.main(["--quick", "--check", "--baseline", "missing.json"]) == 2
        assert "no baseline found" in capsys.readouterr().err

    def test_roundtrip_then_perturbation_fails_named(self, tiny_cli, capsys):
        # First run writes the baseline artifact...
        assert cli.main(["--quick"]) == 0
        report_path = tiny_cli / "QUALITY_scenario_matrix_quick.json"
        assert report_path.exists()
        capsys.readouterr()

        # ... an unperturbed re-run gates green against it ...
        assert cli.main(["--quick", "--check"]) == 0
        out = capsys.readouterr().out
        assert "occlusion-cross/overlap.mota" in out
        assert "REGRESSED" not in out

        # ... and perturbing a tracker parameter fails the gate, naming
        # the scenario and metric that broke.
        assert (
            cli.main(["--quick", "--check", "--set", "overlap_threshold=0.95"]) == 1
        )
        out = capsys.readouterr().out
        assert "occlusion-cross/overlap.mota" in out
        assert "REGRESSED" in out

    def test_missing_baseline_cell_exits_2(self, tiny_cli, capsys):
        assert cli.main(["--quick"]) == 0
        report_path = tiny_cli / "QUALITY_scenario_matrix_quick.json"
        baseline = json.loads(report_path.read_text())
        baseline["cells"]["ghost-scenario/overlap"] = dict(
            baseline["cells"]["occlusion-cross/overlap"]
        )
        report_path.write_text(json.dumps(baseline))
        capsys.readouterr()

        assert cli.main(["--quick", "--check"]) == 2
        captured = capsys.readouterr()
        assert "ghost-scenario/overlap" in captured.err
        assert "MISSING" in captured.out

    def test_stdout_output_writes_no_file(self, tiny_cli, capsys):
        assert cli.main(["--quick", "--output", "-"]) == 0
        assert not (tiny_cli / "QUALITY_scenario_matrix_quick.json").exists()
        assert '"suite": "scenario_matrix"' in capsys.readouterr().out
