"""Observability through the batch runtime: stage timing, traces, metrics."""

import json

import pytest

from repro.obs import (
    PIPELINE_STAGES,
    STAGE_SECONDS_METRIC,
    parse_prometheus_text,
    sample_value,
    validate_chrome_trace,
)
from repro.runtime.runner import RunnerConfig, StreamRunner
from repro.runtime.scenes import build_scene_jobs


def _run(config: RunnerConfig, scenes: int = 2, duration_s: float = 1.0):
    jobs = build_scene_jobs(scenes, duration_s=duration_s, base_seed=0)
    return StreamRunner(config).run(jobs)


class TestInstrumentedRunner:
    def test_instrumented_results_match_uninstrumented(self):
        plain = _run(RunnerConfig(executor="serial"))
        instrumented = _run(RunnerConfig(executor="serial", instrument=True))
        for a, b in zip(plain.recordings, instrumented.recordings):
            assert a.name == b.name
            assert a.num_frames == b.num_frames
            assert a.num_proposals == b.num_proposals
            assert a.num_track_observations == b.num_track_observations
            assert a.mean_active_pixel_fraction == pytest.approx(
                b.mean_active_pixel_fraction
            )

    def test_stage_seconds_cover_all_stages(self):
        batch = _run(RunnerConfig(executor="serial", instrument=True))
        for recording in batch.recordings:
            assert set(recording.stage_seconds) == set(PIPELINE_STAGES)
            assert all(v >= 0 for v in recording.stage_seconds.values())
        totals = batch.stage_seconds()
        assert set(totals) == set(PIPELINE_STAGES)

    def test_uninstrumented_results_carry_no_stage_data(self):
        batch = _run(RunnerConfig(executor="serial"))
        for recording in batch.recordings:
            assert recording.stage_seconds is None
            assert recording.trace_events is None
            assert "stage_seconds" not in recording.to_dict()
        assert batch.stage_seconds() == {}
        assert batch.chrome_trace() is None
        assert "stage_seconds" not in batch.fleet_summary()

    def test_to_dict_and_fleet_summary_gain_stage_seconds(self):
        batch = _run(RunnerConfig(executor="serial", instrument=True))
        payload = batch.recordings[0].to_dict()
        assert set(payload["stage_seconds"]) == set(PIPELINE_STAGES)
        assert set(batch.fleet_summary()["stage_seconds"]) == set(PIPELINE_STAGES)

    def test_trace_has_one_span_per_stage_per_frame_window(self):
        """The ISSUE acceptance criterion, via the runner API."""
        batch = _run(RunnerConfig(executor="serial", trace=True))
        trace = batch.chrome_trace()
        spans = validate_chrome_trace(trace)
        # One pid per recording, named via process_name metadata.
        for pid, recording in enumerate(batch.recordings):
            mine = [s for s in spans if s["pid"] == pid]
            stage_spans = [s for s in mine if s["cat"] == "stage"]
            frame_spans = [s for s in mine if s["cat"] == "frame"]
            assert len(frame_spans) == recording.num_frames
            for stage in PIPELINE_STAGES:
                named = [s for s in stage_spans if s["name"] == stage]
                assert len(named) == recording.num_frames

    def test_trace_sampling_thins_spans_not_stage_seconds(self):
        every = _run(RunnerConfig(executor="serial", trace=True))
        sampled = _run(
            RunnerConfig(executor="serial", trace=True, trace_sample_every=4)
        )
        assert len(validate_chrome_trace(sampled.chrome_trace())) < len(
            validate_chrome_trace(every.chrome_trace())
        )
        for recording in sampled.recordings:
            assert set(recording.stage_seconds) == set(PIPELINE_STAGES)

    def test_process_executor_carries_stage_data_across_pickling(self):
        batch = _run(
            RunnerConfig(executor="process", max_workers=2, trace=True)
        )
        for recording in batch.recordings:
            assert set(recording.stage_seconds) == set(PIPELINE_STAGES)
            assert recording.trace_events
        validate_chrome_trace(batch.chrome_trace())

    def test_metrics_registry_exposition(self):
        batch = _run(RunnerConfig(executor="serial", instrument=True))
        samples = parse_prometheus_text(
            batch.metrics_registry().to_prometheus_text()
        )
        name = batch.recordings[0].name
        tracker = batch.recordings[0].tracker
        assert sample_value(
            samples, "repro_recording_events_total", recording=name, tracker=tracker
        ) == batch.recordings[0].num_events
        assert (
            sample_value(
                samples, STAGE_SECONDS_METRIC, recording=name, stage="tracker"
            )
            is not None
        )

    def test_format_stage_table(self):
        instrumented = _run(RunnerConfig(executor="serial", instrument=True))
        table = instrumented.format_stage_table()
        for stage in PIPELINE_STAGES:
            assert stage in table
        plain = _run(RunnerConfig(executor="serial"))
        assert "no stage breakdown" in plain.format_stage_table()

    def test_bad_trace_sample_rejected(self):
        with pytest.raises(ValueError, match="trace_sample_every"):
            RunnerConfig(trace_sample_every=0)


class TestRuntimeCliObservability:
    def test_cli_trace_and_metrics_files(self, tmp_path, capsys):
        from repro.runtime.__main__ import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        exit_code = main(
            [
                "--scenes",
                "2",
                "--duration",
                "1",
                "--trace",
                str(trace_path),
                "--metrics",
                str(metrics_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "stage" in out  # the stage table is printed

        trace = json.loads(trace_path.read_text())
        spans = validate_chrome_trace(trace)
        stage_names = {s["name"] for s in spans if s["cat"] == "stage"}
        assert stage_names == set(PIPELINE_STAGES)
        # One span per stage per frame window, per recording (pid).
        frames_by_pid = {}
        for span in spans:
            if span["cat"] == "frame":
                frames_by_pid[span["pid"]] = frames_by_pid.get(span["pid"], 0) + 1
        assert len(frames_by_pid) == 2
        for pid, num_frames in frames_by_pid.items():
            for stage in PIPELINE_STAGES:
                count = sum(
                    1
                    for s in spans
                    if s["pid"] == pid and s["cat"] == "stage" and s["name"] == stage
                )
                assert count == num_frames

        samples = parse_prometheus_text(metrics_path.read_text())
        assert any(key[0] == STAGE_SECONDS_METRIC for key in samples)
        assert any(key[0] == "repro_recording_events_total" for key in samples)

    def test_cli_instrument_prints_stage_table(self, capsys):
        from repro.runtime.__main__ import main

        assert main(["--scenes", "1", "--duration", "1", "--instrument"]) == 0
        out = capsys.readouterr().out
        for stage in PIPELINE_STAGES:
            assert stage in out

    def test_cli_log_level_flag_parses(self):
        from repro.runtime.__main__ import build_parser

        args = build_parser().parse_args(["--log-level", "debug"])
        assert args.log_level == "debug"

    def test_cli_errors_go_through_logging(self, capsys):
        from repro.runtime.__main__ import main

        assert main(["--tracker", "made-up"]) == 2
        err = capsys.readouterr().err
        assert "unknown tracker backend" in err
        assert "ERROR" in err  # formatted by logging, not a bare print
