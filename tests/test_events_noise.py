"""Tests for the sensor noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.noise import BackgroundActivityNoise, HotPixelNoise
from repro.events.types import is_time_sorted


class TestBackgroundActivityNoise:
    def test_expected_event_count(self, rng):
        noise = BackgroundActivityNoise(rate_hz_per_pixel=1.0)
        expected = noise.expected_events(240, 180, 1_000_000)
        assert expected == pytest.approx(240 * 180)

    def test_generated_count_close_to_expectation(self, rng):
        noise = BackgroundActivityNoise(rate_hz_per_pixel=0.5)
        packet = noise.generate(240, 180, 0, 1_000_000, rng)
        expected = noise.expected_events(240, 180, 1_000_000)
        assert abs(len(packet) - expected) < 5 * np.sqrt(expected)

    def test_events_within_bounds_and_sorted(self, rng):
        noise = BackgroundActivityNoise(rate_hz_per_pixel=1.0)
        packet = noise.generate(100, 50, 1000, 2000, rng)
        assert packet["x"].min() >= 0 and packet["x"].max() < 100
        assert packet["y"].min() >= 0 and packet["y"].max() < 50
        assert packet["t"].min() >= 1000 and packet["t"].max() < 2000
        assert is_time_sorted(packet)

    def test_zero_rate_produces_nothing(self, rng):
        noise = BackgroundActivityNoise(rate_hz_per_pixel=0.0)
        assert len(noise.generate(240, 180, 0, 1_000_000, rng)) == 0

    def test_zero_duration_produces_nothing(self, rng):
        noise = BackgroundActivityNoise(rate_hz_per_pixel=1.0)
        assert len(noise.generate(240, 180, 100, 100, rng)) == 0

    def test_on_fraction_respected(self, rng):
        noise = BackgroundActivityNoise(rate_hz_per_pixel=2.0, on_fraction=1.0)
        packet = noise.generate(240, 180, 0, 500_000, rng)
        assert np.all(packet["p"] == 1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackgroundActivityNoise(rate_hz_per_pixel=-1)
        with pytest.raises(ValueError):
            BackgroundActivityNoise(on_fraction=2.0)


class TestHotPixelNoise:
    def test_positions_are_stable(self, rng):
        noise = HotPixelNoise(num_hot_pixels=5, seed=3)
        first = noise.positions(240, 180)
        second = noise.positions(240, 180)
        np.testing.assert_array_equal(first, second)
        assert first.shape == (5, 2)

    def test_events_only_at_hot_pixels(self, rng):
        noise = HotPixelNoise(num_hot_pixels=3, rate_hz=200.0, seed=1)
        packet = noise.generate(240, 180, 0, 1_000_000, rng)
        positions = {tuple(p) for p in noise.positions(240, 180)}
        observed = {(int(x), int(y)) for x, y in zip(packet["x"], packet["y"])}
        assert observed.issubset(positions)

    def test_rate_scales_event_count(self, rng):
        slow = HotPixelNoise(num_hot_pixels=5, rate_hz=10.0, seed=2)
        fast = HotPixelNoise(num_hot_pixels=5, rate_hz=1000.0, seed=2)
        slow_count = len(slow.generate(240, 180, 0, 1_000_000, rng))
        fast_count = len(fast.generate(240, 180, 0, 1_000_000, rng))
        assert fast_count > slow_count * 10

    def test_zero_pixels_or_rate(self, rng):
        assert len(HotPixelNoise(num_hot_pixels=0).generate(240, 180, 0, 1000, rng)) == 0
        assert (
            len(HotPixelNoise(num_hot_pixels=5, rate_hz=0.0).generate(240, 180, 0, 1000, rng))
            == 0
        )
