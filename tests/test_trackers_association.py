"""Tests for track-to-detection association."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.trackers.association import (
    greedy_overlap_assignment,
    iou_assignment,
    overlap_score_matrix,
    unmatched_indices,
)
from repro.utils.geometry import BoundingBox


def box(x, y, w=10, h=10):
    return BoundingBox(x, y, w, h)


class TestScoreMatrix:
    def test_shape_and_values(self):
        tracks = [box(0, 0), box(100, 100)]
        detections = [box(0, 0), box(5, 0), box(200, 200)]
        matrix = overlap_score_matrix(tracks, detections)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[0, 2] == 0.0


class TestGreedyAssignment:
    def test_obvious_pairs(self):
        tracks = [box(0, 0), box(100, 100)]
        detections = [box(101, 101), box(1, 1)]
        pairs = greedy_overlap_assignment(tracks, detections)
        assert sorted(pairs) == [(0, 1), (1, 0)]

    def test_one_to_one(self):
        tracks = [box(0, 0), box(2, 2)]
        detections = [box(1, 1)]
        pairs = greedy_overlap_assignment(tracks, detections)
        assert len(pairs) == 1

    def test_min_score_filters(self):
        pairs = greedy_overlap_assignment([box(0, 0)], [box(9, 9)], min_score=0.5)
        assert pairs == []

    def test_empty_inputs(self):
        assert greedy_overlap_assignment([], [box(0, 0)]) == []
        assert greedy_overlap_assignment([box(0, 0)], []) == []

    def test_picks_highest_score_first(self):
        tracks = [box(0, 0)]
        detections = [box(5, 5), box(1, 1)]
        pairs = greedy_overlap_assignment(tracks, detections)
        assert pairs == [(0, 1)]


class TestIouAssignment:
    def test_optimal_beats_greedy_on_crossover(self):
        """A case where greedy's first pick forces a bad total assignment."""
        tracks = [box(0, 0, 10, 10), box(4, 0, 10, 10)]
        detections = [box(2, 0, 10, 10), box(8, 0, 10, 10)]
        optimal = iou_assignment(tracks, detections)
        assert sorted(optimal) == [(0, 0), (1, 1)]

    def test_min_iou_respected(self):
        assert iou_assignment([box(0, 0)], [box(50, 50)], min_iou=0.1) == []

    def test_empty(self):
        assert iou_assignment([], []) == []


class TestUnmatchedIndices:
    def test_positions(self):
        pairs = [(0, 2), (3, 0)]
        assert unmatched_indices(5, pairs, 0) == [1, 2, 4]
        assert unmatched_indices(3, pairs, 1) == [1]

    def test_no_pairs(self):
        assert unmatched_indices(3, [], 0) == [0, 1, 2]


class TestAssignmentProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 200), st.floats(0, 150)), min_size=0, max_size=8
        ),
        st.lists(
            st.tuples(st.floats(0, 200), st.floats(0, 150)), min_size=0, max_size=8
        ),
    )
    def test_assignments_are_one_to_one(self, track_positions, detection_positions):
        tracks = [box(x, y) for x, y in track_positions]
        detections = [box(x, y) for x, y in detection_positions]
        for pairs in (
            greedy_overlap_assignment(tracks, detections),
            iou_assignment(tracks, detections),
        ):
            track_indices = [i for i, _ in pairs]
            detection_indices = [j for _, j in pairs]
            assert len(track_indices) == len(set(track_indices))
            assert len(detection_indices) == len(set(detection_indices))
            assert len(pairs) <= min(len(tracks), len(detections))
