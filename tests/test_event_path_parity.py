"""Adversarial scalar-vs-vectorized parity tests for the event hot paths.

The vectorized NN-filt / refractory / EBMS implementations must be
*bit-identical* to their scalar references: same keep-masks, same per-pixel
timestamp memories, same cluster state (centres, spreads, counts,
histories, merges), same track observations.  These tests drive both paths
over the adversarial packet shapes the chunked fast paths are most likely
to get wrong: same-pixel bursts, timestamps exactly at the support /
refractory boundaries, empty and single-event packets, and packets split at
arbitrary boundaries (the vectorized state must be packet-split invariant
because the scalar reference is).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EbbiotConfig
from repro.core.pipeline import EbbiotPipeline
from repro.events.filters import (
    NearestNeighbourFilter,
    RefractoryFilter,
    distinct_pixel_spans,
    previous_occurrence,
)
from repro.events.types import empty_packet, make_packet
from repro.trackers.ebms import EbmsConfig, EbmsTracker
from repro.utils.fastpath import SCALAR_ENV, force_scalar, scalar_forced


def random_packet(num_events, seed, width=240, height=180, burst_fraction=0.2,
                  time_step=4):
    """Noise + same-pixel bursts + exact timestamp ties."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, width, num_events)
    y = rng.integers(0, height, num_events)
    burst = rng.random(num_events) < burst_fraction
    x[burst] = rng.integers(60, 63, burst.sum())
    y[burst] = rng.integers(60, 63, burst.sum())
    # Coarse time grid so exact ties are common.
    t = np.sort(rng.integers(0, num_events, num_events)) * time_step
    return make_packet(x, y, t, np.ones(num_events, dtype=int))


def blob_packet(num_events, seed, width=240, height=180, num_blobs=4):
    """Moving dense blobs over uniform noise — the EBMS-relevant shape."""
    rng = np.random.default_rng(seed)
    t = np.sort(rng.integers(0, 2_000_000, num_events))
    x = rng.integers(0, width, num_events).astype(float)
    y = rng.integers(0, height, num_events).astype(float)
    for _ in range(num_blobs):
        mask = rng.random(num_events) < 0.2
        cx, cy = rng.uniform(20, width - 20), rng.uniform(20, height - 20)
        vx, vy = rng.uniform(-30, 30), rng.uniform(-10, 10)
        x[mask] = np.clip(cx + vx * t[mask] * 1e-6 + rng.normal(0, 6, mask.sum()), 0, width - 1)
        y[mask] = np.clip(cy + vy * t[mask] * 1e-6 + rng.normal(0, 6, mask.sum()), 0, height - 1)
    return make_packet(x.astype(int), y.astype(int), t, np.ones(num_events, dtype=int))


def ebms_state(tracker):
    """Full observable state of an EBMS tracker, bitwise comparable."""
    clusters = tuple(
        (
            cid,
            c.cx,
            c.cy,
            c.last_update_us,
            c.event_count,
            c.visible,
            c.spread_x,
            c.spread_y,
            tuple(c.position_history),
        )
        for cid, c in tracker._clusters.items()
    )
    return (
        clusters,
        tracker._next_cluster_id,
        tracker.events_processed,
        tracker.merges_performed,
    )


class TestSpanPartition:
    def test_previous_occurrence(self):
        pix = np.array([5, 7, 5, 5, 9, 7])
        assert previous_occurrence(pix).tolist() == [-1, -1, 0, 2, -1, 1]

    def test_spans_have_no_repeats_and_cover(self):
        rng = np.random.default_rng(0)
        pix = rng.integers(0, 50, 2000)
        spans = list(distinct_pixel_spans(pix, max_chunk=128))
        assert spans[0][0] == 0
        assert spans[-1][1] == len(pix)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi == b_lo
        for lo, hi in spans:
            assert hi - lo <= 128
            chunk = pix[lo:hi]
            assert len(np.unique(chunk)) == len(chunk)

    def test_all_same_pixel_degenerates_to_singletons(self):
        pix = np.zeros(10, dtype=np.int64)
        assert list(distinct_pixel_spans(pix)) == [(i, i + 1) for i in range(10)]


class TestNnFilterParity:
    @pytest.mark.parametrize("burst_fraction", [0.0, 0.2, 0.9, 1.0])
    def test_random_packets(self, burst_fraction):
        packet = random_packet(3000, seed=7, burst_fraction=burst_fraction)
        fast = NearestNeighbourFilter(240, 180)
        reference = NearestNeighbourFilter(240, 180, vectorized=False)
        assert (fast.process(packet) == reference.process(packet)).all()
        assert (fast.state_snapshot() == reference.state_snapshot()).all()

    def test_long_span_packet_uses_span_path(self):
        # Packet span far exceeds the support time, so intra-packet
        # predecessors can be stale: exercises the distinct-pixel-span path.
        packet = random_packet(3000, seed=3, time_step=200)
        assert int(packet["t"][-1] - packet["t"][0]) > 66_000
        fast = NearestNeighbourFilter(240, 180)
        reference = NearestNeighbourFilter(240, 180, vectorized=False)
        assert (fast.process(packet) == reference.process(packet)).all()
        assert (fast.state_snapshot() == reference.state_snapshot()).all()

    def test_support_time_boundary_exact(self):
        # A neighbour exactly support_time_us old still supports (>=);
        # one microsecond older does not.
        for age, expected in [(66_000, True), (66_001, False)]:
            fast = NearestNeighbourFilter(240, 180, support_time_us=66_000)
            reference = NearestNeighbourFilter(
                240, 180, support_time_us=66_000, vectorized=False
            )
            packet = make_packet([100, 101], [90, 90], [0, age], [1, 1])
            keep_fast = fast.process(packet)
            keep_reference = reference.process(packet)
            assert (keep_fast == keep_reference).all()
            assert bool(keep_fast[1]) is expected

    def test_empty_and_single_event_packets(self):
        fast = NearestNeighbourFilter(240, 180)
        reference = NearestNeighbourFilter(240, 180, vectorized=False)
        assert len(fast.process(empty_packet())) == 0
        assert len(reference.process(empty_packet())) == 0
        single = make_packet([10], [10], [5], [1])
        assert (fast.process(single) == reference.process(single)).all()
        assert (fast.state_snapshot() == reference.state_snapshot()).all()

    def test_packet_split_invariance(self):
        # Cutting the stream into arbitrary packets (as the pipeline's
        # chunking does) must not change any keep decision.
        packet = random_packet(4000, seed=11, burst_fraction=0.3)
        reference = NearestNeighbourFilter(240, 180, vectorized=False)
        keep_reference = reference.process(packet)
        fast = NearestNeighbourFilter(240, 180)
        splits = [0, 1, 17, 1000, 1001, 2500, 4000]
        keep_fast = np.concatenate(
            [fast.process(packet[lo:hi]) for lo, hi in zip(splits, splits[1:])]
        )
        assert (keep_fast == keep_reference).all()
        assert (fast.state_snapshot() == reference.state_snapshot()).all()

    def test_border_pixels(self):
        # Corner/edge pixels exercise the bounds masking in the gathers.
        xs = [0, 1, 0, 239, 238, 239, 0]
        ys = [0, 0, 1, 179, 179, 178, 179]
        packet = make_packet(xs, ys, list(range(0, 700, 100)), [1] * 7)
        fast = NearestNeighbourFilter(240, 180)
        reference = NearestNeighbourFilter(240, 180, vectorized=False)
        assert (fast.process(packet) == reference.process(packet)).all()

    def test_env_var_forces_scalar(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        assert scalar_forced()
        with force_scalar(False):
            assert not scalar_forced()
        assert scalar_forced()


class TestRefractoryParity:
    @pytest.mark.parametrize("burst_fraction", [0.0, 0.5, 1.0])
    def test_random_packets(self, burst_fraction):
        packet = random_packet(3000, seed=5, burst_fraction=burst_fraction)
        fast = RefractoryFilter(240, 180, refractory_us=2000)
        reference = RefractoryFilter(240, 180, refractory_us=2000, vectorized=False)
        assert (fast.process(packet) == reference.process(packet)).all()
        assert (fast.state_snapshot() == reference.state_snapshot()).all()

    def test_refractory_boundary_exact(self):
        # Exactly refractory_us apart is kept (>=); one microsecond less is
        # suppressed.
        for gap, expected in [(1000, True), (999, False)]:
            fast = RefractoryFilter(240, 180, refractory_us=1000)
            reference = RefractoryFilter(240, 180, refractory_us=1000, vectorized=False)
            packet = make_packet([5] * 20, [5] * 20, list(range(0, 20 * gap, gap)), [1] * 20)
            keep_fast = fast.process(packet)
            assert (keep_fast == reference.process(packet)).all()
            assert bool(keep_fast[1]) is expected

    def test_packet_split_invariance(self):
        packet = random_packet(2000, seed=13, burst_fraction=0.4)
        reference = RefractoryFilter(240, 180, refractory_us=3000, vectorized=False)
        keep_reference = reference.process(packet)
        fast = RefractoryFilter(240, 180, refractory_us=3000)
        splits = [0, 3, 500, 501, 2000]
        keep_fast = np.concatenate(
            [fast.process(packet[lo:hi]) for lo, hi in zip(splits, splits[1:])]
        )
        assert (keep_fast == keep_reference).all()
        assert (fast.state_snapshot() == reference.state_snapshot()).all()

    def test_empty_and_single(self):
        fast = RefractoryFilter(240, 180)
        assert len(fast.process(empty_packet())) == 0
        single = make_packet([3], [4], [100], [1])
        assert fast.process(single)[0]


class TestEbmsParity:
    CONFIGS = [
        EbmsConfig(),
        EbmsConfig(max_clusters=2),
        # merge_distance > radius: a fresh seed can immediately pair.
        EbmsConfig(cluster_radius_px=10, merge_distance_px=30),
        EbmsConfig(decay_time_us=50_000),
        EbmsConfig(
            merge_distance_px=40.0, cluster_radius_px=25.0, support_threshold_events=5
        ),
    ]

    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_cluster_state_bit_identical(self, config_index):
        config = self.CONFIGS[config_index]
        packet = blob_packet(15_000, seed=config_index)
        fast = EbmsTracker(config)
        reference = EbmsTracker(config, vectorized=False)
        # Arbitrary packet boundaries, including empty and single-event.
        splits = [0, 0, 1, 137, 5000, 5001, 15_000]
        for lo, hi in zip(splits, splits[1:]):
            fast.process_events(packet[lo:hi])
            reference.process_events_scalar(packet[lo:hi])
        assert ebms_state(fast) == ebms_state(reference)

    def test_observations_bit_identical(self):
        packet = blob_packet(12_000, seed=42)
        fast = EbmsTracker(EbmsConfig(support_threshold_events=20))
        reference = EbmsTracker(
            EbmsConfig(support_threshold_events=20), vectorized=False
        )
        window = 66_000
        for frame in range(30):
            lo = np.searchsorted(packet["t"], frame * window)
            hi = np.searchsorted(packet["t"], (frame + 1) * window)
            t_mid = frame * window + window // 2
            obs_fast = fast.process_frame(packet[lo:hi], t_mid)
            obs_reference = reference.process_frame(packet[lo:hi], t_mid)
            assert [
                (o.track_id, o.t_us, o.box, o.velocity) for o in obs_fast
            ] == [(o.track_id, o.t_us, o.box, o.velocity) for o in obs_reference]

    def test_empty_packet_is_noop(self):
        fast = EbmsTracker()
        fast.process_events(empty_packet())
        assert fast.events_processed == 0
        assert fast.num_clusters == 0

    def test_snapshot_restore_crosses_paths(self):
        # State captured mid-stream on the fast path resumes identically on
        # either path.
        packet = blob_packet(10_000, seed=3)
        fast = EbmsTracker()
        fast.process_events(packet[:5000])
        checkpoint = fast.snapshot()
        resumed_fast = EbmsTracker()
        resumed_fast.restore(checkpoint)
        resumed_reference = EbmsTracker(vectorized=False)
        resumed_reference.restore(checkpoint)
        resumed_fast.process_events(packet[5000:])
        resumed_reference.process_events_scalar(packet[5000:])
        assert ebms_state(resumed_fast) == ebms_state(resumed_reference)


class TestEndToEndParity:
    def test_ebms_pipeline_digit_identical(self):
        """Whole-pipeline parity: REPRO_FORCE_SCALAR=1 vs the fast path."""
        from repro.datasets import build_recording, LT4_LIKE_SPEC

        recording = build_recording(LT4_LIKE_SPEC, duration_override_s=2.0)
        with force_scalar(False):
            fast = EbbiotPipeline(EbbiotConfig(tracker="ebms")).process_stream(
                recording.stream, collect_frames=False
            )
        with force_scalar(True):
            reference = EbbiotPipeline(EbbiotConfig(tracker="ebms")).process_stream(
                recording.stream, collect_frames=False
            )
        fast_obs = [
            (o.track_id, o.t_us, o.box, o.velocity)
            for o in fast.track_history.observations
        ]
        reference_obs = [
            (o.track_id, o.t_us, o.box, o.velocity)
            for o in reference.track_history.observations
        ]
        assert fast_obs == reference_obs
        assert fast.mean_active_trackers == reference.mean_active_trackers
        assert fast.mean_events_per_frame == reference.mean_events_per_frame

    def test_overlap_pipeline_unaffected_by_scalar_flag(self):
        """The overlap path has no scalar/vectorized split; the flag must
        not change its output (guards accidental coupling)."""
        from repro.datasets import build_recording, LT4_LIKE_SPEC

        recording = build_recording(LT4_LIKE_SPEC, duration_override_s=1.0)
        with force_scalar(False):
            fast = EbbiotPipeline(EbbiotConfig()).process_stream(recording.stream)
        with force_scalar(True):
            reference = EbbiotPipeline(EbbiotConfig()).process_stream(recording.stream)
        assert [
            (o.track_id, o.t_us, o.box) for o in fast.track_history.observations
        ] == [
            (o.track_id, o.t_us, o.box) for o in reference.track_history.observations
        ]


class TestBufferReuse:
    def test_detached_frames_survive_buffer_reuse(self):
        from repro.core.ebbi import EbbiBuilder

        builder = EbbiBuilder(32, 24, 3, reuse_buffers=True)
        first = builder.build(make_packet([1], [1], [10], [1]), 0, 66_000)
        kept = first.detached()
        raw_before = kept.raw.copy()
        builder.build(make_packet([5, 6], [7, 7], [70_000, 70_001], [1, 1]), 66_000, 132_000)
        assert (kept.raw == raw_before).all()
        # Views into the scratch know they need copying.
        assert first.raw.base is not None

    def test_reused_and_fresh_builders_agree(self):
        from repro.core.ebbi import EbbiBuilder

        packet = random_packet(500, seed=1)
        splits = np.array([0, 100, 350, 500], dtype=np.int64)
        starts = np.array([0, 66_000, 132_000])
        ends = starts + 66_000
        reused = EbbiBuilder(240, 180, 3, reuse_buffers=True)
        fresh = EbbiBuilder(240, 180, 3)
        frames_reused = reused.build_batch(packet, starts, ends, splits)
        frames_fresh = fresh.build_batch(packet, starts, ends, splits)
        for a, b in zip(frames_reused, frames_fresh):
            assert (a.raw == b.raw).all()
            assert (a.filtered == b.filtered).all()
        # Second batch overwrites the same scratch and still agrees.
        frames_reused_2 = reused.build_batch(packet, starts, ends, splits)
        for a, b in zip(frames_reused_2, frames_fresh):
            assert (a.raw == b.raw).all()
            assert (a.filtered == b.filtered).all()
