"""Tests for the binary median (majority) filter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.median_filter import binary_median_filter, count_salt_and_pepper


def _naive_majority_filter(frame: np.ndarray, patch: int) -> np.ndarray:
    """Straightforward O(N * p^2) reference implementation."""
    half = patch // 2
    height, width = frame.shape
    padded = np.pad(frame, half, mode="constant")
    out = np.zeros_like(frame, dtype=np.uint8)
    majority = patch * patch // 2
    for y in range(height):
        for x in range(width):
            total = padded[y : y + patch, x : x + patch].sum()
            out[y, x] = 1 if total > majority else 0
    return out


class TestBinaryMedianFilter:
    def test_isolated_pixel_removed(self):
        frame = np.zeros((20, 20), dtype=np.uint8)
        frame[10, 10] = 1
        assert binary_median_filter(frame).sum() == 0

    def test_solid_block_preserved(self):
        frame = np.zeros((20, 20), dtype=np.uint8)
        frame[5:15, 5:15] = 1
        filtered = binary_median_filter(frame)
        assert filtered[7:13, 7:13].all()
        # Corners of the block get eroded (majority not reached) but the
        # interior is intact.
        assert filtered.sum() >= 8 * 8

    def test_single_hole_filled(self):
        frame = np.ones((11, 11), dtype=np.uint8)
        frame[5, 5] = 0
        assert binary_median_filter(frame)[5, 5] == 1

    def test_patch_size_one_is_identity(self):
        frame = (np.arange(25).reshape(5, 5) % 2).astype(np.uint8)
        np.testing.assert_array_equal(binary_median_filter(frame, 1), frame)

    def test_non_binary_input_thresholded(self):
        frame = np.zeros((10, 10), dtype=np.int32)
        frame[3:8, 3:8] = 7
        filtered = binary_median_filter(frame)
        assert filtered.max() == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            binary_median_filter(np.zeros((3, 3, 3)))
        with pytest.raises(ValueError):
            binary_median_filter(np.zeros((5, 5)), patch_size=2)
        with pytest.raises(ValueError):
            binary_median_filter(np.zeros((5, 5)), patch_size=0)

    def test_matches_naive_implementation_small_cases(self, rng):
        for _ in range(5):
            frame = (rng.random((16, 24)) < 0.3).astype(np.uint8)
            np.testing.assert_array_equal(
                binary_median_filter(frame, 3), _naive_majority_filter(frame, 3)
            )

    def test_matches_naive_implementation_patch5(self, rng):
        frame = (rng.random((20, 20)) < 0.4).astype(np.uint8)
        np.testing.assert_array_equal(
            binary_median_filter(frame, 5), _naive_majority_filter(frame, 5)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(st.integers(3, 24), st.integers(3, 24)),
            elements=st.integers(0, 1),
        )
    )
    def test_property_matches_naive(self, frame):
        np.testing.assert_array_equal(
            binary_median_filter(frame, 3), _naive_majority_filter(frame, 3)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(st.integers(3, 20), st.integers(3, 20)),
            elements=st.integers(0, 1),
        )
    )
    def test_property_output_is_binary_and_idempotent_on_solid(self, frame):
        filtered = binary_median_filter(frame, 3)
        assert set(np.unique(filtered)).issubset({0, 1})
        # All-zero input stays all zero; all-one input stays mostly one.
        if frame.sum() == 0:
            assert filtered.sum() == 0


class TestSaltAndPepperCounter:
    def test_counts_isolated_pixels(self):
        clean = np.zeros((30, 30), dtype=np.uint8)
        clean[10:14, 10:14] = 1
        noisy = clean.copy()
        noisy[5, 5] = 1
        noisy[20, 20] = 1
        # The two isolated pixels add exactly two salt-and-pepper counts on
        # top of whatever block-corner erosion the clean frame already has.
        assert count_salt_and_pepper(noisy) == count_salt_and_pepper(clean) + 2

    def test_zero_for_clean_frame(self):
        frame = np.zeros((10, 10), dtype=np.uint8)
        frame[2:8, 2:8] = 1
        assert count_salt_and_pepper(frame) <= 4  # only block corners may count


class TestBinaryMedianFilterStack:
    def test_stack_matches_per_frame_filter(self):
        from repro.core.median_filter import binary_median_filter_stack

        rng = np.random.default_rng(3)
        frames = (rng.random((5, 40, 60)) < 0.2).astype(np.uint8)
        for patch in (1, 3, 5):
            stacked = binary_median_filter_stack(frames, patch)
            for i in range(frames.shape[0]):
                np.testing.assert_array_equal(
                    stacked[i], binary_median_filter(frames[i], patch)
                )

    def test_stack_empty(self):
        from repro.core.median_filter import binary_median_filter_stack

        out = binary_median_filter_stack(np.zeros((0, 8, 8), dtype=np.uint8), 3)
        assert out.shape == (0, 8, 8)

    def test_stack_rejects_2d_input(self):
        from repro.core.median_filter import binary_median_filter_stack

        with pytest.raises(ValueError):
            binary_median_filter_stack(np.zeros((8, 8), dtype=np.uint8), 3)

    def test_stack_rejects_even_patch(self):
        from repro.core.median_filter import binary_median_filter_stack

        with pytest.raises(ValueError):
            binary_median_filter_stack(np.zeros((1, 8, 8), dtype=np.uint8), 2)
