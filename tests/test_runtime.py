"""Tests for the multi-recording streaming runtime."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.evaluation.mot_metrics import MotSummary
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.runtime import (
    BatchResult,
    RecordingJob,
    RecordingResult,
    RunnerConfig,
    StreamRunner,
    build_scene_jobs,
    build_scene_recordings,
    merge_mot_summaries,
    run_recording,
)


def _moving_block_stream(seed: int, num_frames: int = 12) -> EventStream:
    """A small deterministic recording: one 6x6 block crossing the view."""
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        x0 = 20 + 3 * frame_index
        y0 = 60 + (seed % 40)
        t = frame_index * 66_000 + 10_000
        for dy in range(6):
            for dx in range(6):
                xs.append(x0 + dx)
                ys.append(y0 + dy)
                ts.append(t + int(rng.integers(0, 40_000)))
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, 240, 180)


def _jobs(count: int):
    return [
        RecordingJob(name=f"rec-{i}", stream=_moving_block_stream(seed=i))
        for i in range(count)
    ]


class TestRunRecording:
    def test_matches_direct_pipeline_run(self):
        job = _jobs(1)[0]
        config = RunnerConfig(executor="serial")
        result = run_recording(job, config)

        pipeline = EbbiotPipeline(EbbiotConfig())
        direct = pipeline.process_stream(job.stream)
        assert result.name == "rec-0"
        assert result.num_events == len(job.stream)
        assert result.num_frames == direct.num_frames
        assert result.mean_events_per_frame == pytest.approx(
            direct.mean_events_per_frame
        )
        assert result.mean_active_pixel_fraction == pytest.approx(
            direct.mean_active_pixel_fraction
        )
        assert result.mean_active_trackers == pytest.approx(
            direct.mean_active_trackers
        )
        assert result.num_track_observations == direct.total_track_observations()
        assert result.mot is None

    def test_per_job_config_overrides_shared_config(self):
        job = _jobs(1)[0]
        job.config = EbbiotConfig(min_proposal_area=10_000.0)
        result = run_recording(job, RunnerConfig())
        assert result.num_proposals == 0

    def test_throughput_properties(self):
        result = RecordingResult(
            name="x",
            num_events=1000,
            num_frames=10,
            duration_s=2.0,
            wall_time_s=0.5,
            mean_active_pixel_fraction=0.01,
            mean_events_per_frame=100.0,
            mean_active_trackers=1.0,
            num_tracks=1,
            num_track_observations=8,
            num_proposals=12,
        )
        assert result.events_per_second == pytest.approx(2000.0)
        assert result.realtime_factor == pytest.approx(4.0)


class TestStreamRunner:
    def test_serial_and_thread_agree(self):
        jobs = _jobs(3)
        serial = StreamRunner(RunnerConfig(executor="serial")).run(jobs)
        threaded = StreamRunner(RunnerConfig(executor="thread", max_workers=3)).run(jobs)
        assert [r.name for r in serial.recordings] == [
            r.name for r in threaded.recordings
        ]
        for a, b in zip(serial.recordings, threaded.recordings):
            assert a.num_events == b.num_events
            assert a.num_frames == b.num_frames
            assert a.num_track_observations == b.num_track_observations
            assert a.mean_events_per_frame == pytest.approx(b.mean_events_per_frame)

    def test_process_executor_agrees_with_serial(self):
        # Exercises pickling of jobs and results across process boundaries.
        jobs = _jobs(2)
        serial = StreamRunner(RunnerConfig(executor="serial")).run(jobs)
        processed = StreamRunner(
            RunnerConfig(executor="process", max_workers=2)
        ).run(jobs)
        for a, b in zip(serial.recordings, processed.recordings):
            assert a.name == b.name
            assert a.num_events == b.num_events
            assert a.num_frames == b.num_frames
            assert a.num_track_observations == b.num_track_observations
            assert a.mean_active_pixel_fraction == pytest.approx(
                b.mean_active_pixel_fraction
            )

    def test_results_keep_submission_order(self):
        jobs = _jobs(5)
        batch = StreamRunner(RunnerConfig(executor="thread", max_workers=5)).run(jobs)
        assert [r.name for r in batch.recordings] == [job.name for job in jobs]

    def test_empty_job_list(self):
        batch = StreamRunner().run([])
        assert len(batch) == 0
        assert batch.total_events == 0
        assert batch.events_per_second == 0.0
        assert batch.mot is None

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            RunnerConfig(executor="gpu")

    def test_with_executor_returns_new_runner(self):
        runner = StreamRunner(RunnerConfig(executor="thread"))
        serial = runner.with_executor("serial")
        assert serial.config.executor == "serial"
        assert runner.config.executor == "thread"

    def test_resolved_max_workers_caps_at_job_count(self):
        config = RunnerConfig(max_workers=16)
        assert config.resolved_max_workers(3) == 3
        assert RunnerConfig().resolved_max_workers(1) == 1


class TestBatchAggregation:
    def _result(self, name, events, frames, alpha, trackers, mot=None):
        return RecordingResult(
            name=name,
            num_events=events,
            num_frames=frames,
            duration_s=1.0,
            wall_time_s=0.1,
            mean_active_pixel_fraction=alpha,
            mean_events_per_frame=events / frames if frames else 0.0,
            mean_active_trackers=trackers,
            num_tracks=1,
            num_track_observations=4,
            num_proposals=5,
            mot=mot,
        )

    def test_fleet_totals_and_means(self):
        batch = BatchResult(
            recordings=[
                self._result("a", 1000, 10, 0.02, 2.0),
                self._result("b", 500, 30, 0.01, 1.0),
            ],
            wall_time_s=2.0,
        )
        assert batch.total_events == 1500
        assert batch.total_frames == 40
        assert batch.events_per_second == pytest.approx(750.0)
        # Frame-weighted: (0.02 * 10 + 0.01 * 30) / 40.
        assert batch.mean_active_pixel_fraction == pytest.approx(0.0125)
        assert batch.mean_events_per_frame == pytest.approx(1500 / 40)
        assert batch.mean_active_trackers == pytest.approx((2.0 * 10 + 30) / 40)

    def test_merge_mot_summaries_pools_counts(self):
        a = MotSummary(
            mota=0.9,
            motp=0.8,
            num_misses=1,
            num_false_positives=1,
            num_id_switches=0,
            num_ground_truth_boxes=20,
            num_matches=18,
        )
        b = MotSummary(
            mota=0.5,
            motp=0.6,
            num_misses=4,
            num_false_positives=1,
            num_id_switches=0,
            num_ground_truth_boxes=10,
            num_matches=6,
        )
        merged = merge_mot_summaries([a, b])
        assert merged.num_ground_truth_boxes == 30
        assert merged.num_misses == 5
        assert merged.mota == pytest.approx(1.0 - 7 / 30)
        assert merged.motp == pytest.approx((0.8 * 18 + 0.6 * 6) / 24)

    def test_merge_mot_summaries_empty(self):
        assert merge_mot_summaries([]) is None

    def test_batch_mot_skips_recordings_without_gt(self):
        with_mot = self._result(
            "a",
            100,
            10,
            0.01,
            1.0,
            mot=MotSummary(
                mota=1.0,
                motp=0.9,
                num_misses=0,
                num_false_positives=0,
                num_id_switches=0,
                num_ground_truth_boxes=5,
                num_matches=5,
            ),
        )
        without = self._result("b", 100, 10, 0.01, 1.0)
        batch = BatchResult(recordings=[with_mot, without], wall_time_s=1.0)
        assert batch.mot is not None
        assert batch.mot.num_ground_truth_boxes == 5

    def test_to_dict_round_trips_through_json(self):
        batch = BatchResult(
            recordings=[self._result("a", 100, 10, 0.01, 1.0)], wall_time_s=1.0
        )
        payload = json.loads(json.dumps(batch.to_dict()))
        assert payload["fleet"]["num_recordings"] == 1
        assert payload["recordings"][0]["name"] == "a"

    def test_format_table_mentions_every_recording(self):
        batch = BatchResult(
            recordings=[
                self._result("site-a", 100, 10, 0.01, 1.0),
                self._result("site-b", 200, 10, 0.01, 1.0),
            ],
            wall_time_s=1.0,
        )
        table = batch.format_table()
        assert "site-a" in table and "site-b" in table
        assert "fleet:" in table


class TestSceneFleet:
    def test_build_scene_recordings_distinct_names_and_seeds(self):
        recordings = build_scene_recordings(3, duration_s=1.0)
        names = [r.name for r in recordings]
        assert len(set(names)) == 3
        seeds = [r.spec.seed for r in recordings]
        assert len(set(seeds)) == 3

    def test_jobs_carry_ground_truth_and_roe(self):
        jobs = build_scene_jobs(2, duration_s=1.0)
        assert len(jobs) == 2
        for job in jobs:
            assert job.ground_truth is not None
            assert job.config is not None
        # The ENG-like site has foliage, so its job's ROE is non-empty.
        assert jobs[0].config.roe_boxes

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            build_scene_recordings(0)
        with pytest.raises(ValueError):
            build_scene_recordings(1, duration_s=0.0)

    def test_end_to_end_fleet_run_with_mot(self):
        jobs = build_scene_jobs(2, duration_s=2.0)
        batch = StreamRunner(RunnerConfig(executor="thread")).run(jobs)
        assert len(batch) == 2
        assert batch.total_events > 0
        assert batch.total_frames > 0
        assert all(r.mot is not None for r in batch.recordings)
        summary = batch.fleet_summary()
        assert summary["num_recordings"] == 2
        assert summary["mot"] is not None


class TestCli:
    def test_main_runs_and_emits_json(self, tmp_path, capsys):
        from repro.runtime.__main__ import main

        json_path = tmp_path / "fleet.json"
        exit_code = main(
            [
                "--scenes",
                "2",
                "--duration",
                "1",
                "--executor",
                "serial",
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "fleet:" in captured.out
        payload = json.loads(json_path.read_text())
        assert payload["fleet"]["num_recordings"] == 2
        assert len(payload["recordings"]) == 2

    def test_main_rejects_bad_arguments(self, capsys):
        from repro.runtime.__main__ import main

        assert main(["--scenes", "0"]) == 2
        assert main(["--scenes", "2", "--duration", "0"]) == 2


class TestProcessExecutorCoverage:
    def test_process_executor_applies_per_job_config(self):
        # Per-job configs must survive pickling into the worker process.
        job = _jobs(1)[0]
        job.config = EbbiotConfig(min_proposal_area=10_000.0)
        batch = StreamRunner(
            RunnerConfig(executor="process", max_workers=1)
        ).run([job])
        assert batch.recordings[0].num_proposals == 0

    def test_process_executor_handles_empty_recording(self):
        from repro.events.types import empty_packet

        jobs = [
            RecordingJob(name="empty", stream=EventStream(empty_packet(), 240, 180)),
            _jobs(1)[0],
        ]
        batch = StreamRunner(
            RunnerConfig(executor="process", max_workers=2)
        ).run(jobs)
        empty, nonempty = batch.recordings
        assert empty.num_events == 0
        assert empty.num_frames == 0
        assert nonempty.num_frames > 0


class TestZeroFrameAggregation:
    def test_run_recording_on_empty_stream(self):
        from repro.events.types import empty_packet

        job = RecordingJob(name="empty", stream=EventStream(empty_packet(), 240, 180))
        result = run_recording(job, RunnerConfig(executor="serial"))
        assert result.num_events == 0
        assert result.num_frames == 0
        assert result.mean_active_pixel_fraction == 0.0
        assert result.mean_events_per_frame == 0.0
        assert result.mean_active_trackers == 0.0
        assert result.events_per_second == 0.0

    def test_fleet_means_over_zero_frame_recordings_are_finite(self):
        # Fleet means must be 0.0, not NaN, when no recording has frames.
        def zero_frame(name):
            return RecordingResult(
                name=name,
                num_events=0,
                num_frames=0,
                duration_s=0.0,
                wall_time_s=0.0,
                mean_active_pixel_fraction=0.0,
                mean_events_per_frame=0.0,
                mean_active_trackers=0.0,
                num_tracks=0,
                num_track_observations=0,
                num_proposals=0,
            )

        batch = BatchResult(
            recordings=[zero_frame("a"), zero_frame("b")], wall_time_s=0.0
        )
        summary = batch.fleet_summary()
        for key in (
            "mean_active_pixel_fraction",
            "mean_events_per_frame",
            "mean_active_trackers",
            "events_per_second",
        ):
            value = summary.get(key, getattr(batch, key, None))
            assert value == 0.0, key
        assert not any(
            isinstance(v, float) and np.isnan(v)
            for v in summary.values()
            if isinstance(v, float)
        )

    def test_mixed_zero_and_nonzero_frame_recordings(self):
        from repro.events.types import empty_packet

        jobs = [
            RecordingJob(name="empty", stream=EventStream(empty_packet(), 240, 180)),
            _jobs(1)[0],
        ]
        batch = StreamRunner(RunnerConfig(executor="serial")).run(jobs)
        assert batch.total_frames > 0
        assert np.isfinite(batch.mean_active_pixel_fraction)
        assert np.isfinite(batch.mean_events_per_frame)


class TestSceneDiversity:
    def test_default_mix_cycles_four_site_types(self):
        from repro.runtime import DEFAULT_SITE_SPECS

        recordings = build_scene_recordings(4, duration_s=1.0)
        prefixes = [r.name.split("-")[0] for r in recordings]
        assert prefixes == [spec.name for spec in DEFAULT_SITE_SPECS]
        assert prefixes == ["ENG", "LT4", "RAIN", "CROSS"]

    def test_rain_recording_is_noisier_than_lt4(self):
        from repro.runtime import build_rain_recording
        from repro.datasets.synthetic import LT4_LIKE_SPEC, build_recording

        rain = build_rain_recording(duration_s=1.0, seed=1)
        quiet = build_recording(LT4_LIKE_SPEC, duration_override_s=1.0)
        assert rain.stream.mean_event_rate > 2 * quiet.stream.mean_event_rate

    def test_crossing_recording_produces_occlusion(self):
        from repro.core import EbbiotPipeline
        from repro.runtime import build_crossing_recording

        recording = build_crossing_recording(duration_s=3.0, seed=5)
        assert recording.annotations.num_tracks() == 2
        pipeline = EbbiotPipeline(EbbiotConfig())
        pipeline.process_stream(recording.stream, collect_frames=False)
        assert pipeline.tracker.occlusions_detected > 0

    def test_special_scenes_work_in_fleet_run(self):
        jobs = build_scene_jobs(4, duration_s=1.0)
        batch = StreamRunner(RunnerConfig(executor="thread")).run(jobs)
        assert len(batch) == 4
        assert all(r.num_frames > 0 for r in batch.recordings)

    def test_custom_site_spec_overrides_are_respected(self):
        from dataclasses import replace

        from repro.runtime import RAIN_LIKE_SPEC

        quiet_rain = replace(RAIN_LIKE_SPEC, noise_rate_hz_per_pixel=0.05)
        quiet = build_scene_recordings(1, duration_s=1.0, site_specs=[quiet_rain])
        loud = build_scene_recordings(1, duration_s=1.0, site_specs=[RAIN_LIKE_SPEC])
        assert quiet[0].stream.mean_event_rate < loud[0].stream.mean_event_rate / 2


class TestTrackerBackendsInRuntime:
    def test_run_recording_records_backend_name(self):
        job = _jobs(1)[0]
        job.config = EbbiotConfig(tracker="kalman")
        result = run_recording(job, RunnerConfig(executor="serial"))
        assert result.tracker == "kalman"
        assert result.to_dict()["tracker"] == "kalman"

    def test_jobs_from_recordings_cycles_trackers(self):
        recordings = build_scene_recordings(3, duration_s=1.0)
        from repro.runtime.scenes import jobs_from_recordings

        jobs = jobs_from_recordings(recordings, trackers=("overlap", "ebms"))
        assert [job.config.tracker for job in jobs] == ["overlap", "ebms", "overlap"]
        # A single string applies fleet-wide.
        jobs = jobs_from_recordings(recordings, trackers="kalman")
        assert all(job.config.tracker == "kalman" for job in jobs)
        # ROE boxes still come from each recording.
        assert jobs[0].config.roe_boxes

    def test_batch_result_groups_by_tracker(self):
        def recording(name, tracker, frames, trackers_mean):
            return RecordingResult(
                name=name,
                num_events=100,
                num_frames=frames,
                duration_s=1.0,
                wall_time_s=0.5,
                mean_active_pixel_fraction=0.1,
                mean_events_per_frame=10.0,
                mean_active_trackers=trackers_mean,
                num_tracks=1,
                num_track_observations=5,
                num_proposals=5,
                tracker=tracker,
            )

        batch = BatchResult(
            recordings=[
                recording("a", "overlap", 10, 2.0),
                recording("b", "kalman", 10, 4.0),
                recording("c", "overlap", 30, 2.0),
            ],
            wall_time_s=1.0,
        )
        assert batch.trackers == ["kalman", "overlap"]
        groups = batch.by_tracker()
        assert set(groups) == {"overlap", "kalman"}
        assert len(groups["overlap"]) == 2
        assert groups["kalman"].mean_active_trackers == pytest.approx(4.0)
        assert groups["overlap"].mean_active_trackers == pytest.approx(2.0)
        payload = batch.to_dict()
        assert set(payload["by_tracker"]) == {"overlap", "kalman"}
        assert payload["fleet"]["trackers"] == ["kalman", "overlap"]
        # The per-recording table carries the backend column.
        assert "kalman" in batch.format_table()

    def test_mixed_backend_fleet_runs_end_to_end(self):
        jobs = build_scene_jobs(3, duration_s=1.0, trackers=("overlap", "kalman", "ebms"))
        batch = StreamRunner(RunnerConfig(executor="serial")).run(jobs)
        assert [r.tracker for r in batch.recordings] == ["overlap", "kalman", "ebms"]
        groups = batch.by_tracker()
        assert set(groups) == {"overlap", "kalman", "ebms"}
        for sub in groups.values():
            assert sub.mot is not None

    def test_cli_tracker_flag(self, tmp_path, capsys):
        from repro.runtime.__main__ import main

        json_path = tmp_path / "fleet.json"
        exit_code = main(
            [
                "--scenes",
                "2",
                "--duration",
                "1",
                "--executor",
                "serial",
                "--tracker",
                "kalman",
                "--output",
                str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["fleet"]["trackers"] == ["kalman"]
        assert all(r["tracker"] == "kalman" for r in payload["recordings"])

    def test_cli_rejects_unknown_tracker(self, capsys):
        from repro.runtime.__main__ import main

        assert main(["--scenes", "1", "--tracker", "made-up"]) == 2
        assert "unknown tracker backend" in capsys.readouterr().err
