"""Tests for :class:`SensorSession`: live processing == batch replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.serving import SensorSession


def _moving_block_stream(seed: int = 0, num_frames: int = 16) -> EventStream:
    """One 6x6 block crossing the view (same shape as the runtime tests)."""
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        x0 = 20 + 3 * frame_index
        y0 = 80
        t = frame_index * 66_000 + 10_000
        for dy in range(6):
            for dx in range(6):
                xs.append(x0 + dx)
                ys.append(y0 + dy)
                ts.append(t + int(rng.integers(0, 40_000)))
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, 240, 180)


def _batches(stream: EventStream, batch_us: int, shuffle_rng=None):
    """Slice a stream into stream-time batches, optionally shuffled within."""
    events = stream.events
    for lo in range(0, int(events["t"][-1]) + 1, batch_us):
        i0, i1 = np.searchsorted(events["t"], [lo, lo + batch_us])
        batch = events[i0:i1].copy()
        if shuffle_rng is not None and len(batch):
            shuffle_rng.shuffle(batch)
        yield batch


def _assert_observations_equal(live_obs, batch_obs):
    assert len(live_obs) == len(batch_obs)
    for a, b in zip(live_obs, batch_obs):
        assert a.track_id == b.track_id
        assert a.t_us == b.t_us
        assert a.box.x == pytest.approx(b.box.x)
        assert a.box.y == pytest.approx(b.box.y)
        assert a.box.width == pytest.approx(b.box.width)
        assert a.box.height == pytest.approx(b.box.height)


class TestSessionEquivalence:
    def test_live_session_matches_process_stream(self):
        """The ISSUE acceptance criterion: live output == batch replay."""
        stream = _moving_block_stream()
        batch = EbbiotPipeline(EbbiotConfig()).process_stream(stream)

        session = SensorSession("s", reorder_slack_us=2_000)
        for events in _batches(stream, 11_000):
            session.ingest(events)
        session.finish()
        summary = session.summary()

        assert summary.num_frames == batch.num_frames
        assert summary.num_events == len(stream)
        assert session.late_events == 0
        assert summary.mean_events_per_frame == pytest.approx(
            batch.mean_events_per_frame
        )
        assert summary.mean_active_pixel_fraction == pytest.approx(
            batch.mean_active_pixel_fraction
        )
        assert summary.mean_active_trackers == pytest.approx(
            batch.mean_active_trackers
        )
        assert summary.num_track_observations > 0
        _assert_observations_equal(
            session.result.track_history.observations,
            batch.track_history.observations,
        )

    def test_out_of_order_within_slack_matches_batch(self):
        """Disorder bounded by the slack lands in the correct EBBI window."""
        stream = _moving_block_stream(seed=3)
        batch = EbbiotPipeline(EbbiotConfig()).process_stream(stream)

        rng = np.random.default_rng(7)
        session = SensorSession("s", reorder_slack_us=12_000)
        # Shuffling whole 11 ms batches produces disorder both within a
        # batch (always tolerated) and across adjacent window boundaries.
        for events in _batches(stream, 11_000, shuffle_rng=rng):
            session.ingest(events)
        session.finish()

        assert session.late_events == 0
        assert session.frames_processed == batch.num_frames
        _assert_observations_equal(
            session.result.track_history.observations,
            batch.track_history.observations,
        )

    def test_single_giant_batch_matches_batch(self):
        stream = _moving_block_stream(seed=5)
        batch = EbbiotPipeline(EbbiotConfig()).process_stream(stream)
        session = SensorSession("s")
        session.ingest(stream.events)
        session.finish()
        assert session.frames_processed == batch.num_frames
        _assert_observations_equal(
            session.result.track_history.observations,
            batch.track_history.observations,
        )


class TestSessionLifecycle:
    def test_ingest_after_finish_raises(self):
        session = SensorSession("s")
        session.finish()
        with pytest.raises(RuntimeError):
            session.ingest(_moving_block_stream().events[:10])
        assert session.finish() == []  # idempotent

    def test_summary_of_empty_session(self):
        session = SensorSession("s")
        session.finish()
        summary = session.summary()
        assert summary.num_frames == 0
        assert summary.num_events == 0
        assert summary.mean_active_pixel_fraction == 0.0
        assert summary.events_per_second == 0.0

    def test_snapshot_restore_round_trip(self):
        """A restored session continues exactly like the original."""
        stream = _moving_block_stream(seed=9)
        batches = list(_batches(stream, 66_000))
        half = len(batches) // 2

        reference = SensorSession("s", reorder_slack_us=0)
        forked = SensorSession("s", reorder_slack_us=0)
        for events in batches[:half]:
            reference.ingest(events)
            forked.ingest(events)

        checkpoint = forked.snapshot()
        assert checkpoint.frames_processed == forked.frames_processed

        # Corrupt the fork's tracker state, then restore the checkpoint.
        forked.pipeline.tracker.reset()
        forked.restore(checkpoint)

        for events in batches[half:]:
            reference.ingest(events)
            forked.ingest(events)
        reference.finish()
        forked.finish()

        ref_summary = reference.summary()
        fork_summary = forked.summary()
        assert fork_summary.num_frames == ref_summary.num_frames
        assert fork_summary.mean_active_trackers == pytest.approx(
            ref_summary.mean_active_trackers
        )
        # Track observations after the checkpoint must be identical.
        ref_tail = [
            o
            for o in reference.result.track_history.observations
            if o.t_us > checkpoint.frames_processed * 66_000
        ]
        fork_tail = [
            o
            for o in forked.result.track_history.observations
            if o.t_us > checkpoint.frames_processed * 66_000
        ]
        _assert_observations_equal(fork_tail, ref_tail)

    def test_restore_rejects_foreign_snapshot(self):
        session_a = SensorSession("a")
        session_b = SensorSession("b")
        with pytest.raises(ValueError):
            session_b.restore(session_a.snapshot())


class TestBoundedHistory:
    def test_keep_history_off_keeps_summary_counts_correct(self):
        stream = _moving_block_stream(seed=11)
        full = SensorSession("a", keep_history=True)
        bounded = SensorSession("b", keep_history=False)
        for events in _batches(stream, 33_000):
            full.ingest(events)
            bounded.ingest(events)
        full.finish()
        bounded.finish()

        assert len(bounded.result.track_history) == 0  # constant memory
        ref = full.summary()
        bounded_summary = bounded.summary()
        assert bounded_summary.num_track_observations == ref.num_track_observations
        assert bounded_summary.num_tracks == ref.num_tracks
        assert ref.num_track_observations == len(full.result.track_history)


class TestNonDefaultBackends:
    """ISSUE satellite: a SensorSession on a baseline backend behaves like
    the batch pipeline, including snapshot/restore."""

    @pytest.mark.parametrize("backend", ["kalman", "ebms"])
    def test_live_session_matches_process_stream(self, backend):
        stream = _moving_block_stream(seed=21)
        config = EbbiotConfig(tracker=backend)
        batch = EbbiotPipeline(config).process_stream(stream)

        session = SensorSession("s", config=config, reorder_slack_us=2_000)
        assert session.backend_name == backend
        for events in _batches(stream, 11_000):
            session.ingest(events)
        session.finish()
        summary = session.summary()

        assert summary.tracker == backend
        assert summary.num_frames == batch.num_frames
        assert summary.mean_active_trackers == pytest.approx(
            batch.mean_active_trackers
        )
        _assert_observations_equal(
            session.result.track_history.observations,
            batch.track_history.observations,
        )

    @pytest.mark.parametrize("backend", ["kalman", "ebms"])
    def test_snapshot_restore_round_trip(self, backend):
        """Satellite: snapshot/restore round-trips on the baseline backends."""
        stream = _moving_block_stream(seed=22)
        batches = list(_batches(stream, 66_000))
        half = len(batches) // 2
        config = EbbiotConfig(tracker=backend)

        reference = SensorSession("s", config=config, reorder_slack_us=0)
        forked = SensorSession("s", config=config, reorder_slack_us=0)
        for events in batches[:half]:
            reference.ingest(events)
            forked.ingest(events)

        checkpoint = forked.snapshot()
        assert checkpoint.pipeline.tracker.backend == backend
        forked.pipeline.tracker.reset()
        forked.restore(checkpoint)

        for events in batches[half:]:
            reference.ingest(events)
            forked.ingest(events)
        reference.finish()
        forked.finish()

        cutoff = checkpoint.frames_processed * 66_000
        ref_tail = [
            o
            for o in reference.result.track_history.observations
            if o.t_us > cutoff
        ]
        fork_tail = [
            o
            for o in forked.result.track_history.observations
            if o.t_us > cutoff
        ]
        _assert_observations_equal(fork_tail, ref_tail)

    def test_restore_rejects_other_backend_snapshot(self):
        overlap = SensorSession("s")
        checkpoint = overlap.snapshot()
        kalman = SensorSession("s", config=EbbiotConfig(tracker="kalman"))
        with pytest.raises(ValueError, match="cannot restore"):
            kalman.restore(checkpoint)
