"""Tests for the constant-velocity Kalman filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trackers.kalman import ConstantVelocityKalmanFilter


class TestInitialisation:
    def test_requires_initialisation(self):
        kalman = ConstantVelocityKalmanFilter()
        assert not kalman.is_initialised
        with pytest.raises(RuntimeError):
            kalman.predict()
        with pytest.raises(RuntimeError):
            kalman.update(0, 0)

    def test_initialise_sets_position(self):
        kalman = ConstantVelocityKalmanFilter()
        kalman.initialise(10, 20)
        assert kalman.position == (10, 20)
        assert kalman.velocity == (0, 0)
        assert kalman.is_initialised

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            ConstantVelocityKalmanFilter(process_noise=0)
        with pytest.raises(ValueError):
            ConstantVelocityKalmanFilter(measurement_noise=-1)


class TestPredictionAndUpdate:
    def test_velocity_learned_from_measurements(self):
        kalman = ConstantVelocityKalmanFilter()
        kalman.initialise(0, 0)
        for step in range(1, 20):
            kalman.predict()
            kalman.update(4.0 * step, 0.0)
        vx, vy = kalman.velocity
        assert vx == pytest.approx(4.0, abs=0.5)
        assert vy == pytest.approx(0.0, abs=0.3)

    def test_prediction_extrapolates(self):
        kalman = ConstantVelocityKalmanFilter()
        kalman.initialise(0, 0)
        for step in range(1, 15):
            kalman.predict()
            kalman.update(2.0 * step, 3.0 * step)
        cx, cy = kalman.predict()
        assert cx == pytest.approx(2.0 * 15, abs=1.5)
        assert cy == pytest.approx(3.0 * 15, abs=2.0)

    def test_update_pulls_towards_measurement(self):
        kalman = ConstantVelocityKalmanFilter(measurement_noise=1.0)
        kalman.initialise(0, 0)
        kalman.predict()
        cx, cy = kalman.update(10, 10)
        assert 0 < cx < 10
        assert 0 < cy < 10

    def test_uncertainty_grows_with_prediction_shrinks_with_update(self):
        kalman = ConstantVelocityKalmanFilter()
        kalman.initialise(0, 0)
        initial = kalman.position_uncertainty()
        kalman.predict()
        after_predict = kalman.position_uncertainty()
        kalman.update(0, 0)
        after_update = kalman.position_uncertainty()
        assert after_predict > initial
        assert after_update < after_predict

    def test_covariance_stays_symmetric_positive(self):
        kalman = ConstantVelocityKalmanFilter()
        kalman.initialise(5, 5)
        rng = np.random.default_rng(0)
        for step in range(30):
            kalman.predict()
            kalman.update(5 + step + rng.normal(0, 1), 5 + rng.normal(0, 1))
            covariance = kalman.covariance
            np.testing.assert_allclose(covariance, covariance.T, atol=1e-8)
            eigenvalues = np.linalg.eigvalsh(covariance)
            assert np.all(eigenvalues > -1e-9)

    def test_noise_free_measurements_tracked_exactly(self):
        kalman = ConstantVelocityKalmanFilter(measurement_noise=0.1)
        kalman.initialise(0, 0)
        for step in range(1, 40):
            kalman.predict()
            kalman.update(float(step), float(2 * step))
        assert kalman.position[0] == pytest.approx(39, abs=0.5)
        assert kalman.position[1] == pytest.approx(78, abs=1.0)


class TestModelMatrices:
    def test_transition_matrix_moves_position_by_velocity(self):
        transition = ConstantVelocityKalmanFilter.transition_matrix()
        state = np.array([1.0, 2.0, 3.0, 4.0])
        advanced = transition @ state
        np.testing.assert_allclose(advanced, [4.0, 6.0, 3.0, 4.0])

    def test_measurement_matrix_extracts_centroid(self):
        measurement = ConstantVelocityKalmanFilter.measurement_matrix()
        state = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(measurement @ state, [1.0, 2.0])

    def test_noise_covariances_positive_semidefinite(self):
        kalman = ConstantVelocityKalmanFilter()
        for matrix in (kalman.process_noise_covariance(), kalman.measurement_noise_covariance()):
            eigenvalues = np.linalg.eigvalsh(matrix)
            assert np.all(eigenvalues >= -1e-12)
