"""Tests for event packets and the EventPacket wrapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.events.types import (
    EVENT_DTYPE,
    EventPacket,
    concatenate_packets,
    empty_packet,
    is_time_sorted,
    make_packet,
    validate_packet,
)


class TestMakePacket:
    def test_round_trip_fields(self):
        packet = make_packet([1, 2], [3, 4], [10, 20], [1, -1])
        assert packet.dtype == EVENT_DTYPE
        assert list(packet["x"]) == [1, 2]
        assert list(packet["y"]) == [3, 4]
        assert list(packet["t"]) == [10, 20]
        assert list(packet["p"]) == [1, -1]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            make_packet([1, 2], [3], [10, 20], [1, -1])

    def test_invalid_polarity_raises(self):
        with pytest.raises(ValueError, match="polarity"):
            make_packet([1], [2], [3], [0])

    def test_empty_packet(self):
        packet = empty_packet()
        assert len(packet) == 0
        assert packet.dtype == EVENT_DTYPE


class TestConcatenateAndValidate:
    def test_concatenate_sorts_by_time(self):
        a = make_packet([1], [1], [200], [1])
        b = make_packet([2], [2], [100], [-1])
        merged = concatenate_packets([a, b])
        assert list(merged["t"]) == [100, 200]

    def test_concatenate_empty_list(self):
        assert len(concatenate_packets([])) == 0

    def test_concatenate_skips_empty_packets(self):
        a = make_packet([1], [1], [100], [1])
        merged = concatenate_packets([empty_packet(), a, empty_packet()])
        assert len(merged) == 1

    def test_validate_in_bounds(self):
        packet = make_packet([0, 239], [0, 179], [0, 1], [1, 1])
        validate_packet(packet, 240, 180)

    def test_validate_out_of_bounds_x(self):
        packet = make_packet([240], [0], [0], [1])
        with pytest.raises(ValueError, match="x coordinates"):
            validate_packet(packet, 240, 180)

    def test_validate_out_of_bounds_y(self):
        packet = make_packet([0], [180], [0], [1])
        with pytest.raises(ValueError, match="y coordinates"):
            validate_packet(packet, 240, 180)

    def test_is_time_sorted(self):
        assert is_time_sorted(make_packet([1, 2], [1, 2], [1, 2], [1, 1]))
        assert not is_time_sorted(make_packet([1, 2], [1, 2], [2, 1], [1, 1]))
        assert is_time_sorted(empty_packet())


class TestEventPacketWrapper:
    def test_wrapper_validates_dtype(self):
        with pytest.raises(TypeError):
            EventPacket(np.zeros(3), 240, 180)

    def test_wrapper_validates_bounds(self):
        packet = make_packet([500], [0], [0], [1])
        with pytest.raises(ValueError):
            EventPacket(packet, 240, 180)

    def test_duration_and_rate(self):
        packet = make_packet([0, 1], [0, 1], [0, 1_000_000], [1, 1])
        wrapped = EventPacket(packet, 240, 180)
        assert wrapped.duration == 1_000_000
        assert wrapped.event_rate == pytest.approx(2.0)

    def test_time_slice(self):
        packet = make_packet([0, 1, 2], [0, 1, 2], [0, 100, 200], [1, 1, 1])
        wrapped = EventPacket(packet, 240, 180)
        sliced = wrapped.time_slice(50, 150)
        assert len(sliced) == 1
        assert int(sliced.events["t"][0]) == 100

    def test_iteration_yields_tuples(self):
        packet = make_packet([5], [6], [7], [-1])
        wrapped = EventPacket(packet, 240, 180)
        assert list(wrapped) == [(5, 6, 7, -1)]


class TestPacketProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 239),
                st.integers(0, 179),
                st.integers(0, 10**9),
                st.sampled_from([1, -1]),
            ),
            max_size=50,
        )
    )
    def test_concatenation_is_sorted_and_preserves_count(self, events):
        if events:
            xs, ys, ts, ps = zip(*events)
        else:
            xs, ys, ts, ps = [], [], [], []
        packet = make_packet(xs, ys, ts, ps)
        half = len(packet) // 2
        merged = concatenate_packets([packet[:half], packet[half:]])
        assert len(merged) == len(packet)
        assert is_time_sorted(merged)


class TestNormalizePacket:
    def test_canonical_dtype_is_returned_unchanged(self):
        from repro.events.types import normalize_packet

        packet = make_packet([1], [2], [3], [1])
        assert normalize_packet(packet) is packet

    def test_reordered_fields_are_normalized(self):
        from repro.events.types import EVENT_DTYPE, normalize_packet

        reordered_dtype = np.dtype(
            [("t", np.int64), ("p", np.int8), ("x", np.int16), ("y", np.int16)]
        )
        reordered = np.zeros(2, dtype=reordered_dtype)
        reordered["x"] = [5, 6]
        reordered["y"] = [7, 8]
        reordered["t"] = [100, 200]
        reordered["p"] = [1, -1]
        normalized = normalize_packet(reordered)
        assert normalized.dtype == EVENT_DTYPE
        assert normalized["x"].tolist() == [5, 6]
        assert normalized["t"].tolist() == [100, 200]
        assert normalized["p"].tolist() == [1, -1]

    def test_wider_field_types_are_cast(self):
        from repro.events.types import EVENT_DTYPE, normalize_packet

        wide_dtype = np.dtype(
            [("x", np.int64), ("y", np.int64), ("t", np.int64), ("p", np.int64)]
        )
        wide = np.zeros(1, dtype=wide_dtype)
        wide["x"] = 12
        normalized = normalize_packet(wide)
        assert normalized.dtype == EVENT_DTYPE
        assert normalized["x"][0] == 12

    def test_missing_fields_rejected(self):
        from repro.events.types import normalize_packet

        bad = np.zeros(1, dtype=np.dtype([("x", np.int16), ("y", np.int16)]))
        with pytest.raises(TypeError):
            normalize_packet(bad)
        with pytest.raises(TypeError):
            normalize_packet(np.zeros(3))

    def test_event_packet_accepts_reordered_fields(self):
        reordered = np.zeros(
            1, dtype=np.dtype([("p", np.int8), ("t", np.int64), ("y", np.int16), ("x", np.int16)])
        )
        wrapper = EventPacket(reordered, 240, 180)
        from repro.events.types import EVENT_DTYPE

        assert wrapper.events.dtype == EVENT_DTYPE

    def test_overflowing_values_rejected_not_wrapped(self):
        from repro.events.types import normalize_packet

        wide = np.zeros(1, dtype=np.dtype(
            [("x", np.int64), ("y", np.int64), ("t", np.int64), ("p", np.int64)]
        ))
        wide["x"] = 65_546  # would silently wrap to 10 in int16
        with pytest.raises(ValueError):
            normalize_packet(wide)
