"""Tests for the MOT summary metrics and report formatting."""

from __future__ import annotations

import pytest

from repro.evaluation.mot_metrics import compute_mot_summary
from repro.evaluation.precision_recall import PrecisionRecall
from repro.evaluation.report import format_comparison_table, format_precision_recall_table
from repro.simulation.ground_truth import GroundTruthBox, GroundTruthFrame
from repro.trackers.base import TrackObservation
from repro.utils.geometry import BoundingBox


def gt_frame(t_us, entries):
    return GroundTruthFrame(
        t_us=t_us,
        boxes=[
            GroundTruthBox(track_id=tid, object_class="car", box=b) for tid, b in entries
        ],
    )


def observation(t_us, box, track_id):
    return TrackObservation(track_id=track_id, box=box, t_us=t_us)


class TestMotSummary:
    def test_perfect_tracking(self):
        ground_truth = [
            gt_frame(33_000, [(0, BoundingBox(10, 10, 20, 20))]),
            gt_frame(99_000, [(0, BoundingBox(14, 10, 20, 20))]),
        ]
        observations = [
            observation(33_000, BoundingBox(10, 10, 20, 20), 1),
            observation(99_000, BoundingBox(14, 10, 20, 20), 1),
        ]
        summary = compute_mot_summary(observations, ground_truth)
        assert summary.mota == pytest.approx(1.0)
        assert summary.motp == pytest.approx(1.0)
        assert summary.num_id_switches == 0
        assert summary.num_matches == 2

    def test_misses_and_false_positives_reduce_mota(self):
        ground_truth = [gt_frame(33_000, [(0, BoundingBox(10, 10, 20, 20))])]
        observations = [observation(33_000, BoundingBox(150, 100, 20, 20), 1)]
        summary = compute_mot_summary(observations, ground_truth)
        assert summary.num_misses == 1
        assert summary.num_false_positives == 1
        assert summary.mota == pytest.approx(1.0 - 2.0)

    def test_id_switch_detected(self):
        ground_truth = [
            gt_frame(33_000, [(0, BoundingBox(10, 10, 20, 20))]),
            gt_frame(99_000, [(0, BoundingBox(14, 10, 20, 20))]),
        ]
        observations = [
            observation(33_000, BoundingBox(10, 10, 20, 20), 1),
            observation(99_000, BoundingBox(14, 10, 20, 20), 2),
        ]
        summary = compute_mot_summary(observations, ground_truth)
        assert summary.num_id_switches == 1

    def test_to_dict(self):
        ground_truth = [gt_frame(33_000, [(0, BoundingBox(10, 10, 20, 20))])]
        summary = compute_mot_summary([], ground_truth)
        data = summary.to_dict()
        assert data["misses"] == 1
        assert "mota" in data and "motp" in data

    def test_empty_everything(self):
        summary = compute_mot_summary([], [])
        assert summary.mota == 0.0
        assert summary.motp == 0.0


class TestReportFormatting:
    def _results(self):
        return {
            "EBBIOT": {
                0.3: PrecisionRecall(0.9, 0.85, 90, 100, 106),
                0.5: PrecisionRecall(0.8, 0.75, 80, 100, 106),
            },
            "EBMS": {
                0.3: PrecisionRecall(0.5, 0.6, 50, 100, 83),
                0.5: PrecisionRecall(0.3, 0.4, 30, 100, 83),
            },
        }

    def test_precision_recall_table_contains_all_trackers(self):
        table = format_precision_recall_table(self._results())
        assert "EBBIOT" in table and "EBMS" in table
        assert "IoU>0.3" in table and "IoU>0.5" in table
        assert "0.900" in table

    def test_single_metric(self):
        table = format_precision_recall_table(self._results(), metric="recall")
        assert "recall" in table
        assert "precision" not in table

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            format_precision_recall_table(self._results(), metric="f1")

    def test_empty_results(self):
        assert format_precision_recall_table({}) == "(no results)"

    def test_comparison_table(self):
        rows = [
            {"pipeline": "EBBIOT", "computes_relative": 1.0},
            {"pipeline": "EBMS", "computes_relative": 3.04},
        ]
        table = format_comparison_table(rows, ["pipeline", "computes_relative"], title="Fig 5")
        assert "Fig 5" in table
        assert "EBMS" in table
        assert "3.04" in table

    def test_comparison_table_missing_column(self):
        table = format_comparison_table([{"a": 1}], ["a", "b"])
        assert "a" in table
