"""Tests for the synthetic Table I datasets and annotation containers."""

from __future__ import annotations

import pytest

from repro.datasets.annotations import RecordingAnnotations
from repro.datasets.synthetic import (
    ENG_LIKE_SPEC,
    LT4_LIKE_SPEC,
    build_recording,
    build_table1_datasets,
)
from repro.simulation.ground_truth import GroundTruthBox, GroundTruthFrame
from repro.utils.geometry import BoundingBox


class TestDatasetSpecs:
    def test_specs_match_table1_structure(self):
        assert ENG_LIKE_SPEC.lens_focal_length_mm == 12.0
        assert LT4_LIKE_SPEC.lens_focal_length_mm == 6.0
        assert ENG_LIKE_SPEC.paper_duration_s == pytest.approx(2998.4)
        assert LT4_LIKE_SPEC.paper_duration_s == pytest.approx(999.5)
        assert ENG_LIKE_SPEC.paper_num_events == pytest.approx(107.5e6)
        assert LT4_LIKE_SPEC.paper_num_events == pytest.approx(12.5e6)

    def test_eng_denser_than_lt4(self):
        assert ENG_LIKE_SPEC.arrival_rate_per_s > LT4_LIKE_SPEC.arrival_rate_per_s
        assert ENG_LIKE_SPEC.noise_rate_hz_per_pixel > LT4_LIKE_SPEC.noise_rate_hz_per_pixel


class TestBuildRecording:
    def test_short_recording_has_events_and_annotations(self):
        recording = build_recording(LT4_LIKE_SPEC, duration_override_s=5.0)
        assert recording.name == "LT4"
        assert recording.result.num_events > 0
        assert len(recording.annotations) > 0
        assert recording.annotations.annotation_interval_us == 66_000

    def test_duration_override(self):
        recording = build_recording(LT4_LIKE_SPEC, duration_override_s=3.0)
        assert recording.result.duration_s <= 3.1

    def test_table1_row_fields(self):
        recording = build_recording(LT4_LIKE_SPEC, duration_override_s=3.0)
        row = recording.table1_row()
        assert row["location"] == "LT4"
        assert row["lens_mm"] == 6.0
        assert row["paper_num_events"] == pytest.approx(12.5e6)
        assert row["simulated_num_events"] > 0
        assert row["extrapolated_num_events"] == pytest.approx(
            row["event_rate_per_s"] * LT4_LIKE_SPEC.paper_duration_s
        )

    def test_deterministic(self):
        first = build_recording(LT4_LIKE_SPEC, duration_override_s=3.0)
        second = build_recording(LT4_LIKE_SPEC, duration_override_s=3.0)
        assert first.result.num_events == second.result.num_events

    def test_build_table1_datasets(self):
        recordings = build_table1_datasets(duration_override_s=2.0)
        assert [r.name for r in recordings] == ["ENG", "LT4"]

    def test_eng_recording_includes_foliage_roe(self):
        recording = build_recording(ENG_LIKE_SPEC, duration_override_s=2.0)
        assert ENG_LIKE_SPEC.include_foliage
        assert recording.result.config.distractors


class TestRecordingAnnotations:
    def _annotations(self):
        frames = [
            GroundTruthFrame(
                t_us=33_000,
                boxes=[
                    GroundTruthBox(0, "car", BoundingBox(10, 10, 30, 20)),
                    GroundTruthBox(1, "bus", BoundingBox(100, 50, 80, 30)),
                ],
            ),
            GroundTruthFrame(
                t_us=99_000,
                boxes=[GroundTruthBox(0, "car", BoundingBox(15, 10, 30, 20))],
            ),
        ]
        return RecordingAnnotations(frames=frames)

    def test_counts(self):
        annotations = self._annotations()
        assert len(annotations) == 2
        assert annotations.num_tracks() == 2
        assert annotations.num_boxes() == 3
        assert annotations.boxes_per_class() == {"car": 2, "bus": 1}

    def test_round_trip(self):
        annotations = self._annotations()
        restored = RecordingAnnotations.from_dict(annotations.to_dict())
        assert restored.num_tracks() == 2
        assert restored.num_boxes() == 3
        assert restored.frames[0].boxes[1].object_class == "bus"
