"""Tests for EventStream and frame windowing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.events.stream import EventStream, frame_windows
from repro.events.types import empty_packet, make_packet


def _packet_spanning(duration_us: int, count: int):
    """Evenly spaced events over a duration."""
    ts = np.linspace(0, duration_us, count, endpoint=False).astype(np.int64)
    return make_packet(
        np.arange(count) % 240, np.arange(count) % 180, ts, np.ones(count, dtype=int)
    )


class TestFrameWindows:
    def test_every_event_in_exactly_one_window(self):
        packet = _packet_spanning(1_000_000, 100)
        windows = list(frame_windows(packet, 66_000))
        total = sum(len(events) for _, _, events in windows)
        assert total == 100

    def test_windows_are_contiguous(self):
        packet = _packet_spanning(500_000, 50)
        windows = list(frame_windows(packet, 66_000))
        for (s1, e1, _), (s2, e2, _) in zip(windows, windows[1:]):
            assert e1 == s2
            assert e1 - s1 == 66_000

    def test_empty_windows_are_yielded(self):
        packet = make_packet([1, 2], [1, 2], [0, 200_000], [1, 1])
        windows = list(frame_windows(packet, 66_000))
        lengths = [len(events) for _, _, events in windows]
        assert lengths[0] == 1
        assert 0 in lengths[1:-1] or lengths[1] == 0

    def test_empty_events_with_no_bounds(self):
        assert list(frame_windows(empty_packet(), 66_000)) == []

    def test_explicit_bounds(self):
        windows = list(frame_windows(empty_packet(), 100, t_start=0, t_end=350))
        assert len(windows) == 4
        assert windows[0][0] == 0
        assert windows[-1][1] == 400

    def test_invalid_duration_raises(self):
        with pytest.raises(ValueError):
            list(frame_windows(empty_packet(), 0, t_start=0, t_end=100))


class TestEventStream:
    def test_sorts_unsorted_input(self):
        packet = make_packet([1, 2], [1, 2], [200, 100], [1, 1])
        stream = EventStream(packet, 240, 180)
        assert list(stream.events["t"]) == [100, 200]

    def test_rejects_out_of_bounds(self):
        packet = make_packet([999], [0], [0], [1])
        with pytest.raises(ValueError):
            EventStream(packet, 240, 180)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            EventStream(np.zeros(4), 240, 180)

    def test_duration_and_rate(self):
        stream = EventStream(_packet_spanning(2_000_000, 200), 240, 180)
        assert stream.duration_s == pytest.approx(2.0, rel=0.01)
        assert stream.mean_event_rate == pytest.approx(100.0, rel=0.05)

    def test_empty_stream_properties(self):
        stream = EventStream(empty_packet(), 240, 180)
        assert stream.duration_us == 0
        assert stream.mean_event_rate == 0.0
        assert stream.num_frames(66_000) == 0

    def test_time_slice(self):
        stream = EventStream(_packet_spanning(1_000_000, 100), 240, 180)
        sliced = stream.time_slice(0, 500_000)
        assert len(sliced) == 50

    def test_iter_frames_align_to_zero(self):
        packet = make_packet([1], [1], [150_000], [1])
        stream = EventStream(packet, 240, 180)
        aligned = list(stream.iter_frames(66_000, align_to_zero=True))
        assert aligned[0][0] == 0
        unaligned = list(stream.iter_frames(66_000, align_to_zero=False))
        assert unaligned[0][0] == 150_000

    def test_merged_with(self):
        a = EventStream(make_packet([1], [1], [100], [1]), 240, 180)
        b = EventStream(make_packet([2], [2], [50], [1]), 240, 180)
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert list(merged.events["t"]) == [50, 100]

    def test_merged_with_mismatched_resolution_raises(self):
        a = EventStream(empty_packet(), 240, 180)
        b = EventStream(empty_packet(), 128, 128)
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_filtered_by_mask(self):
        stream = EventStream(_packet_spanning(100_000, 10), 240, 180)
        mask = np.zeros(10, dtype=bool)
        mask[::2] = True
        assert len(stream.filtered(mask)) == 5

    def test_filtered_wrong_mask_length(self):
        stream = EventStream(_packet_spanning(100_000, 10), 240, 180)
        with pytest.raises(ValueError):
            stream.filtered(np.zeros(3, dtype=bool))

    def test_split_preserves_events(self):
        stream = EventStream(_packet_spanning(1_000_000, 100), 240, 180)
        parts = stream.split(4)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 100

    def test_split_invalid(self):
        stream = EventStream(empty_packet(), 240, 180)
        with pytest.raises(ValueError):
            stream.split(0)


class TestStreamProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=10_000, max_value=200_000),
    )
    def test_frame_partition_is_lossless(self, count, frame_duration):
        stream = EventStream(_packet_spanning(1_000_000, count), 240, 180)
        windows = list(stream.iter_frames(frame_duration, align_to_zero=True))
        assert sum(len(w[2]) for w in windows) == count
        # Windows tile the time axis without gaps.
        for (s1, e1, _), (s2, _, _) in zip(windows, windows[1:]):
            assert e1 == s2


class TestFrameBoundariesAndIndex:
    def test_boundaries_match_frame_windows(self):
        from repro.events.stream import frame_boundaries

        packet = _packet_spanning(1_000_000, 137)
        edges, splits = frame_boundaries(packet["t"], 66_000, 0, 1_000_000)
        expected = list(frame_windows(packet, 66_000, t_start=0, t_end=1_000_000))
        assert len(edges) - 1 == len(expected)
        for i, (t_start, t_end, events) in enumerate(expected):
            assert edges[i] == t_start
            assert edges[i + 1] == t_end
            np.testing.assert_array_equal(packet[splits[i] : splits[i + 1]], events)

    def test_boundaries_degenerate_range(self):
        from repro.events.stream import frame_boundaries

        packet = _packet_spanning(1_000, 10)
        edges, splits = frame_boundaries(packet["t"], 100, 50, 50)
        assert len(edges) == 1 and len(splits) == 1

    def test_frame_index_matches_iter_frames(self):
        packet = _packet_spanning(700_000, 81)
        stream = EventStream(packet)
        for align in (False, True):
            index = stream.frame_index(66_000, align_to_zero=align)
            windows = list(stream.iter_frames(66_000, align_to_zero=align))
            assert index.num_frames == len(windows)
            for i, (t_start, t_end, events) in enumerate(windows):
                assert index.starts[i] == t_start
                assert index.ends[i] == t_end
                np.testing.assert_array_equal(index.frame_events(i), events)
            assert int(index.counts.sum()) == len(packet)

    def test_frame_index_iterates_like_iter_frames(self):
        packet = _packet_spanning(300_000, 20)
        stream = EventStream(packet)
        iterated = list(stream.frame_index(66_000, align_to_zero=True))
        direct = list(stream.iter_frames(66_000, align_to_zero=True))
        assert len(iterated) == len(direct)
        for (s1, e1, ev1), (s2, e2, ev2) in zip(iterated, direct):
            assert (s1, e1) == (s2, e2)
            np.testing.assert_array_equal(ev1, ev2)

    def test_frame_index_empty_stream(self):
        stream = EventStream(empty_packet())
        index = stream.frame_index(66_000)
        assert index.num_frames == 0
        assert list(index) == []

    def test_frame_index_num_frames_matches_num_frames_method(self):
        packet = _packet_spanning(900_000, 33)
        stream = EventStream(packet)
        for align in (False, True):
            index = stream.frame_index(66_000, align_to_zero=align)
            assert index.num_frames == stream.num_frames(66_000, align_to_zero=align)

    @settings(deadline=None, max_examples=50)
    @given(
        num_events=st.integers(min_value=1, max_value=300),
        duration=st.integers(min_value=1, max_value=2_000_000),
        frame_duration=st.integers(min_value=1_000, max_value=200_000),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_boundaries_property_equivalence(
        self, num_events, duration, frame_duration, seed
    ):
        rng = np.random.default_rng(seed)
        ts = np.sort(rng.integers(0, duration, size=num_events))
        packet = make_packet(
            np.zeros(num_events, dtype=int),
            np.zeros(num_events, dtype=int),
            ts,
            np.ones(num_events, dtype=int),
        )
        legacy = list(frame_windows(packet, frame_duration))
        stream = EventStream(packet)
        index = stream.frame_index(frame_duration)
        assert index.num_frames == len(legacy)
        for i, (t_start, t_end, events) in enumerate(legacy):
            assert index.starts[i] == t_start
            np.testing.assert_array_equal(index.frame_events(i), events)


class TestFromArraysAndNormalization:
    def test_from_arrays_round_trip(self):
        stream = EventStream.from_arrays(
            [10, 20], [30, 40], [100, 50], [1, -1], width=240, height=180
        )
        # Sorted by timestamp on construction.
        assert stream.events["t"].tolist() == [50, 100]
        assert stream.events["x"].tolist() == [20, 10]
        assert len(stream) == 2

    def test_from_arrays_defaults_polarity_to_on(self):
        stream = EventStream.from_arrays([1, 2], [3, 4], [10, 20])
        assert stream.events["p"].tolist() == [1, 1]

    def test_from_arrays_validates_bounds(self):
        with pytest.raises(ValueError):
            EventStream.from_arrays([999], [0], [0], width=240, height=180)

    def test_reordered_dtype_accepted(self):
        reordered_dtype = np.dtype(
            [("t", np.int64), ("x", np.int16), ("y", np.int16), ("p", np.int8)]
        )
        packet = np.zeros(3, dtype=reordered_dtype)
        packet["x"] = [1, 2, 3]
        packet["t"] = [30, 20, 10]
        packet["p"] = [1, 1, -1]
        stream = EventStream(packet)
        from repro.events.types import EVENT_DTYPE

        assert stream.events.dtype == EVENT_DTYPE
        assert stream.events["t"].tolist() == [10, 20, 30]
        assert stream.events["x"].tolist() == [3, 2, 1]

    def test_wrong_fields_still_rejected(self):
        bad = np.zeros(2, dtype=np.dtype([("a", np.int16), ("b", np.int16)]))
        with pytest.raises(TypeError):
            EventStream(bad)
