"""Shared fixtures: small deterministic scenes, streams and pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EbbiotConfig
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.sensor.davis import SensorGeometry
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.trajectories import ConstantVelocityTrajectory, crossing_trajectory
from repro.events.noise import BackgroundActivityNoise

# The analyzer's fixture trees contain deliberately-broken modules and a
# fake tests/test_event_path_parity.py; they are parsed by
# tests/test_analysis.py, never imported, and must not be collected.
collect_ignore = ["analysis_fixtures"]
collect_ignore_glob = ["analysis_fixtures/*"]


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_geometry() -> SensorGeometry:
    """Full DAVIS240 geometry (kept at paper resolution for realism)."""
    return SensorGeometry(width=240, height=180, lens_focal_length_mm=12.0)


@pytest.fixture
def simple_packet() -> np.ndarray:
    """A tiny hand-written event packet."""
    return make_packet(
        x=[10, 11, 12, 10, 50],
        y=[20, 20, 21, 22, 90],
        t=[100, 200, 300, 400, 500],
        p=[1, -1, 1, 1, -1],
    )


@pytest.fixture
def single_car_scene(small_geometry: SensorGeometry) -> Scene:
    """A scene with exactly one car crossing left to right and light noise."""
    config = SceneConfig(
        geometry=small_geometry,
        noise=BackgroundActivityNoise(rate_hz_per_pixel=0.2),
        seed=7,
    )
    scene = Scene(config)
    template = OBJECT_TEMPLATES[ObjectClass.CAR]
    trajectory = crossing_trajectory(
        width=small_geometry.width,
        y=70.0,
        speed_px_per_s=60.0,
        t_enter_us=0,
        object_width=template.width_px,
        direction=1,
    )
    scene.add_object(SceneObject(object_id=0, template=template, trajectory=trajectory))
    return scene


@pytest.fixture
def two_car_scene(small_geometry: SensorGeometry) -> Scene:
    """Two cars in different lanes moving in opposite directions (occlusion)."""
    config = SceneConfig(
        geometry=small_geometry,
        noise=BackgroundActivityNoise(rate_hz_per_pixel=0.2),
        seed=11,
    )
    scene = Scene(config)
    car = OBJECT_TEMPLATES[ObjectClass.CAR]
    van = OBJECT_TEMPLATES[ObjectClass.VAN]
    scene.add_object(
        SceneObject(
            object_id=0,
            template=car,
            trajectory=crossing_trajectory(240, 60.0, 70.0, 0, car.width_px, direction=1),
        )
    )
    scene.add_object(
        SceneObject(
            object_id=1,
            template=van,
            trajectory=crossing_trajectory(240, 85.0, 55.0, 0, van.width_px, direction=-1),
        )
    )
    return scene


@pytest.fixture
def single_car_stream(single_car_scene: Scene):
    """Rendered stream + ground truth of the single-car scene (5 seconds)."""
    return single_car_scene.render(duration_us=5_000_000)


@pytest.fixture
def paper_config() -> EbbiotConfig:
    """The paper's default EBBIOT configuration."""
    return EbbiotConfig()


@pytest.fixture
def constant_velocity_stream(small_geometry: SensorGeometry) -> EventStream:
    """A deterministic event stream tracing a small moving square (no noise)."""
    xs, ys, ts = [], [], []
    t = 0
    for step in range(60):
        x0 = 10 + step * 2
        for dx in range(8):
            for dy in range(8):
                xs.append(x0 + dx)
                ys.append(80 + dy)
                ts.append(t)
        t += 33_000
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, small_geometry.width, small_geometry.height)
