"""Tests for scene assembly and rendering."""

from __future__ import annotations

import pytest

from repro.events.noise import BackgroundActivityNoise
from repro.sensor.davis import SensorGeometry
from repro.simulation.event_generator import FoliageDistractor
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.trajectories import crossing_trajectory
from repro.utils.geometry import BoundingBox


class TestSceneConstruction:
    def test_duplicate_object_id_rejected(self, single_car_scene):
        template = OBJECT_TEMPLATES[ObjectClass.CAR]
        trajectory = crossing_trajectory(240, 50, 60.0, 0, template.width_px)
        with pytest.raises(ValueError, match="duplicate"):
            single_car_scene.add_object(
                SceneObject(object_id=0, template=template, trajectory=trajectory)
            )

    def test_allocate_object_id_is_unique(self, single_car_scene):
        first = single_car_scene.allocate_object_id()
        second = single_car_scene.allocate_object_id()
        assert first != second
        assert first > 0  # id 0 is taken by the fixture's car

    def test_invalid_chunk_duration(self):
        with pytest.raises(ValueError):
            SceneConfig(chunk_duration_us=0)

    def test_roe_boxes_from_distractors(self):
        config = SceneConfig(
            distractors=[FoliageDistractor(BoundingBox(0, 140, 50, 40))]
        )
        scene = Scene(config)
        roe = scene.roe_boxes()
        assert len(roe) == 1
        assert roe[0].contains_box(BoundingBox(0, 140, 50, 40))


class TestSceneRendering:
    def test_render_produces_events_and_ground_truth(self, single_car_scene):
        result = single_car_scene.render(duration_us=2_000_000)
        assert result.num_events > 0
        assert result.duration_s <= 2.0 + 0.1
        assert len(result.ground_truth) == 2_000_000 // 66_000 + (
            1 if 2_000_000 % 66_000 > 33_000 else 0
        ) or len(result.ground_truth) > 0

    def test_ground_truth_tracks_the_moving_car(self, single_car_scene):
        result = single_car_scene.render(duration_us=3_000_000)
        xs = [
            frame.boxes[0].box.x
            for frame in result.ground_truth
            if len(frame.boxes) == 1
        ]
        assert len(xs) > 10
        # The car moves left to right, so annotated x increases monotonically.
        assert all(b >= a for a, b in zip(xs, xs[1:]))

    def test_noise_free_scene_has_fewer_events(self, small_geometry):
        def build(noise_rate):
            config = SceneConfig(
                geometry=small_geometry,
                noise=BackgroundActivityNoise(rate_hz_per_pixel=noise_rate),
                seed=5,
            )
            scene = Scene(config)
            template = OBJECT_TEMPLATES[ObjectClass.CAR]
            scene.add_object(
                SceneObject(
                    object_id=0,
                    template=template,
                    trajectory=crossing_trajectory(240, 60, 60.0, 0, template.width_px),
                )
            )
            return scene.render(duration_us=1_000_000).num_events

        assert build(2.0) > build(0.0)

    def test_no_noise_model(self, small_geometry):
        config = SceneConfig(geometry=small_geometry, noise=None, seed=2)
        scene = Scene(config)
        result = scene.render(duration_us=500_000)
        assert result.num_events == 0  # no objects, no noise

    def test_render_is_deterministic_for_fixed_seed(self, small_geometry):
        def render_once():
            config = SceneConfig(geometry=small_geometry, seed=9)
            scene = Scene(config)
            template = OBJECT_TEMPLATES[ObjectClass.BIKE]
            scene.add_object(
                SceneObject(
                    object_id=0,
                    template=template,
                    trajectory=crossing_trajectory(240, 70, 40.0, 0, template.width_px),
                )
            )
            return scene.render(duration_us=1_000_000)

        first = render_once()
        second = render_once()
        assert first.num_events == second.num_events
        assert (first.stream.events == second.stream.events).all()

    def test_invalid_duration(self, single_car_scene):
        with pytest.raises(ValueError):
            single_car_scene.render(duration_us=0)

    def test_num_ground_truth_tracks(self, two_car_scene):
        result = two_car_scene.render(duration_us=2_000_000)
        assert result.num_ground_truth_tracks() == 2

    def test_distractor_adds_events_in_region(self, small_geometry):
        region = BoundingBox(0, 140, 40, 40)
        config = SceneConfig(
            geometry=small_geometry,
            noise=None,
            distractors=[FoliageDistractor(region, events_per_pixel_per_s=3.0)],
            seed=3,
        )
        scene = Scene(config)
        result = scene.render(duration_us=1_000_000)
        assert result.num_events > 0
        assert result.stream.events["y"].min() >= 140
