"""Unit tests for the :mod:`repro.obs` observability primitives."""

import json
import logging
import math
import threading

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Instrumentation,
    LOG_LEVELS,
    MetricsRegistry,
    PIPELINE_STAGES,
    STAGE_SECONDS_METRIC,
    Tracer,
    add_log_level_argument,
    logging_setup,
    merge_chrome_traces,
    parse_prometheus_text,
    sample_value,
    validate_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, format_value


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("requests_total")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_labelled_children_are_independent_and_cached(self):
        counter = Counter("events_total", labelnames=("sensor",))
        a = counter.labels(sensor="a")
        a.inc(10)
        counter.labels(sensor="b").inc(1)
        assert counter.labels(sensor="a") is a
        assert counter.labels(sensor="a").value == 10
        assert counter.labels(sensor="b").value == 1

    def test_wrong_labelset_rejected(self):
        counter = Counter("events_total", labelnames=("sensor",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(stage="ebbi")
        with pytest.raises(ValueError, match="requires labels"):
            counter.inc()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("with spaces")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", labelnames=("1bad",))
        with pytest.raises(ValueError, match="reserved"):
            Counter("ok_total", labelnames=("le",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4


class TestHistogram:
    def test_lifetime_count_sum_mean(self):
        histogram = Histogram("latency_seconds")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)

    def test_percentile_empty_window_is_zero(self):
        histogram = Histogram("latency_seconds")
        assert histogram.percentile(50) == 0.0
        assert histogram.percentile(99) == 0.0

    def test_percentile_single_sample_is_itself(self):
        histogram = Histogram("latency_seconds")
        histogram.observe(0.042)
        for q in (0, 1, 50, 99, 100):
            assert histogram.percentile(q) == pytest.approx(0.042)

    def test_percentile_linear_interpolation(self):
        """Matches np.percentile's default method — the telemetry contract."""
        histogram = Histogram("latency_seconds")
        samples = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for value in samples:
            histogram.observe(value)
        assert histogram.percentile(50) == pytest.approx(
            float(np.percentile(samples, 50))
        )
        assert histogram.percentile(50) == pytest.approx(0.0505)

    def test_window_bounds_percentiles_but_not_count(self):
        histogram = Histogram("latency_seconds", window=10)
        for _ in range(50):
            histogram.observe(1.0)
        histogram.observe(9.0)
        assert histogram.count == 51
        # Window holds the last 10 samples: nine 1.0s and one 9.0.
        assert histogram.percentile(100) == pytest.approx(9.0)

    def test_bucket_counts_cumulative_ending_at_inf(self):
        histogram = Histogram("latency_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        counts = histogram._unlabelled().bucket_counts()
        assert counts == [(0.1, 1), (1.0, 2), (math.inf, 3)]

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="window"):
            Histogram("h", window=0)


class TestFormatValue:
    def test_integers_drop_decimal(self):
        assert format_value(5.0) == "5"
        assert format_value(0.0) == "0"

    def test_floats_and_infinities(self):
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"


class TestMetricsRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("events_total", labelnames=("sensor",))
        second = registry.counter("events_total", labelnames=("sensor",))
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("thing")

    def test_labelset_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("thing_total", labelnames=("b",))

    def test_prometheus_text_round_trip(self):
        registry = MetricsRegistry()
        registry.counter(
            "events_total", "Events seen.", labelnames=("sensor",)
        ).labels(sensor="cam-0").inc(42)
        registry.gauge("queue_depth").set(3)
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)

        text = registry.to_prometheus_text()
        assert "# TYPE events_total counter" in text
        assert "# HELP events_total Events seen." in text
        samples = parse_prometheus_text(text)
        assert sample_value(samples, "events_total", sensor="cam-0") == 42
        assert sample_value(samples, "queue_depth") == 3
        assert sample_value(samples, "latency_seconds_count") == 2
        assert sample_value(samples, "latency_seconds_sum") == pytest.approx(0.55)
        assert sample_value(samples, "latency_seconds_bucket", le="0.1") == 1
        assert sample_value(samples, "latency_seconds_bucket", le="+Inf") == 2

    def test_label_value_escaping_round_trip(self):
        registry = MetricsRegistry()
        tricky = 'quote " slash \\ newline \n end'
        registry.counter("c_total", labelnames=("k",)).labels(k=tricky).inc()
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert sample_value(samples, "c_total", k=tricky) == 1

    def test_to_dict_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.histogram("h_seconds").observe(0.01)
        document = json.loads(json.dumps(registry.to_dict()))
        names = {family["name"] for family in document["metrics"]}
        assert names == {"c_total", "h_seconds"}

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("this is not exposition\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text('name{unterminated="x} 1\n')

    def test_concurrent_updates_are_consistent(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labelnames=("worker",))

        def worker(index):
            child = counter.labels(worker=str(index % 4))
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(child.value for _, child in counter.children())
        assert total == 8000


class TestTracer:
    def test_span_records_duration_event(self):
        tracer = Tracer()
        with tracer.span("work", args={"k": 1}):
            pass
        events = tracer.events()
        assert len(events) == 1
        span = events[0]
        assert span["ph"] == "X"
        assert span["name"] == "work"
        assert span["dur"] >= 0
        assert span["args"] == {"k": 1}

    def test_buffer_limit_drops_instead_of_growing(self):
        tracer = Tracer(buffer_limit=3)
        for index in range(5):
            tracer.record_span(f"s{index}", 0.0, 1.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_chrome_trace_document_validates(self):
        tracer = Tracer()
        with tracer.span("stage-a"):
            pass
        trace = tracer.chrome_trace(process_name="unit-test")
        assert trace["displayTimeUnit"] == "ms"
        spans = validate_chrome_trace(trace)
        assert [span["name"] for span in spans] == ["stage-a"]
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"] == {"name": "unit-test"}

    def test_merge_assigns_one_pid_per_track(self):
        first, second = Tracer(), Tracer()
        with first.span("a"):
            pass
        with second.span("b"):
            pass
        merged = merge_chrome_traces(
            [("rec-0", first.events()), ("rec-1", second.events())]
        )
        spans = validate_chrome_trace(merged)
        assert {span["pid"] for span in spans} == {0, 1}
        names = [
            (e["pid"], e["args"]["name"])
            for e in merged["traceEvents"]
            if e["ph"] == "M"
        ]
        assert names == [(0, "rec-0"), (1, "rec-1")]

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "traceEvents"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0}]}
            )


class TestInstrumentation:
    def test_stage_accumulates_seconds_and_calls(self):
        instrumentation = Instrumentation()
        for _ in range(3):
            with instrumentation.stage("ebbi"):
                pass
        assert instrumentation.stage_calls["ebbi"] == 3
        assert instrumentation.stage_seconds["ebbi"] >= 0
        snapshot = instrumentation.snapshot()
        instrumentation.reset()
        assert instrumentation.stage_seconds == {}
        assert snapshot["ebbi"] >= 0  # snapshot is a detached copy

    def test_sampling_thins_tracer_but_not_accumulators(self):
        tracer = Tracer()
        instrumentation = Instrumentation(tracer=tracer, sample_every=2)
        for frame_index in range(4):
            with instrumentation.frame(frame_index, 0, 66_000, 100):
                with instrumentation.stage("ebbi"):
                    pass
        assert instrumentation.stage_calls["ebbi"] == 4
        stage_spans = [e for e in tracer.events() if e["cat"] == "stage"]
        assert len(stage_spans) == 2  # frames 0 and 2 only

    def test_metrics_sink_labelled_by_stage(self):
        registry = MetricsRegistry()
        instrumentation = Instrumentation(
            metrics=registry, labels={"sensor": "cam-0"}
        )
        with instrumentation.stage("tracker"):
            pass
        samples = parse_prometheus_text(registry.to_prometheus_text())
        value = sample_value(
            samples, STAGE_SECONDS_METRIC, sensor="cam-0", stage="tracker"
        )
        assert value is not None and value >= 0

    def test_bad_sample_every_rejected(self):
        with pytest.raises(ValueError, match="sample_every"):
            Instrumentation(sample_every=0)

    def test_pipeline_stages_constant(self):
        assert PIPELINE_STAGES == ("ebbi", "median", "rpn", "roe", "tracker")


class TestLoggingSetup:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            logging_setup("chatty")

    def test_configures_root_level(self):
        logging_setup("warning")
        assert logging.getLogger().level == logging.WARNING
        logging_setup("info")
        assert logging.getLogger().level == logging.INFO

    def test_add_log_level_argument(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_log_level_argument(parser)
        assert parser.parse_args([]).log_level == "info"
        assert parser.parse_args(["--log-level", "debug"]).log_level == "debug"
        with pytest.raises(SystemExit):
            parser.parse_args(["--log-level", "nope"])

    def test_levels_cover_the_usual_suspects(self):
        assert set(LOG_LEVELS) == {"debug", "info", "warning", "error"}

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
