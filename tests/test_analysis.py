"""Tests for the static-analysis framework (`repro.analysis`).

Three layers:

* fixture trees — every rule family has a seeded-violation module in
  ``tests/analysis_fixtures/bad`` that must fire, and a repaired twin in
  ``tests/analysis_fixtures/good`` that must stay silent;
* the real tree — the committed checkout plus ``ANALYSIS_baseline.json``
  must produce zero unsuppressed findings and zero stale suppressions,
  and the serving-layer bugs fixed alongside the analyzer must not
  reappear;
* the CLI — exit-code semantics (0 clean / 1 gate failure / 2 usage
  error), JSON output, baseline-deletion detection, and a seeded-bug
  end-to-end run against a copied tree.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, run_rules
from repro.analysis.findings import load_baseline
from repro.analysis.index import CodeIndex

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"

ALL_RULES = sorted(
    ["CONC001", "CONC002", "CONC003", "CONC004", "SNAP001",
     "PARITY001", "PARITY002", "DRIFT001", "DRIFT002", "LINT001"]
)


@pytest.fixture(scope="module")
def bad_findings():
    return run_rules(CodeIndex.build(BAD))


@pytest.fixture(scope="module")
def good_findings():
    return run_rules(CodeIndex.build(GOOD))


@pytest.fixture(scope="module")
def repo_findings():
    return run_rules(CodeIndex.build(REPO))


def _of(findings, rule, path_part=None):
    return [
        f
        for f in findings
        if f.rule == rule and (path_part is None or path_part in f.file)
    ]


def _run_cli(args, cwd=REPO):
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ---------------------------------------------------------------------------
# registry sanity


def test_all_rule_families_registered():
    assert set(ALL_RULES) <= set(RULES)


def test_unknown_rule_raises_keyerror():
    with pytest.raises(KeyError):
        run_rules(CodeIndex.build(GOOD), ["NOPE999"])


# ---------------------------------------------------------------------------
# bad fixture tree: every seeded violation fires with the right shape


def test_conc001_lock_order_inversion(bad_findings):
    hits = _of(bad_findings, "CONC001", "conc_bad.py")
    assert any("inversion" in f.message and "BadHub" in f.message for f in hits)
    assert any(
        "already holding" in f.message and "_shard_locks" in f.message
        for f in hits
    )


def test_conc002_unguarded_shared_state(bad_findings):
    hits = _of(bad_findings, "CONC002", "conc_bad.py")
    attrs = {a for f in hits for a in ("_table", "_counter") if a in f.message}
    assert attrs == {"_table", "_counter"}
    assert all("outside any lock" in f.message for f in hits)


def test_conc003_blocking_call_under_lock(bad_findings):
    hits = _of(bad_findings, "CONC003", "conc_bad.py")
    assert len(hits) == 1
    assert "put()" in hits[0].message
    assert "_lock_a" in hits[0].message


def test_conc004_blocking_hub_calls_in_coroutines(bad_findings):
    hits = _of(bad_findings, "CONC004", "async_bad.py")
    assert len(hits) == 3
    joined = " ".join(f.message for f in hits)
    assert "register" in joined
    assert "close_sensor" in joined
    assert "time.sleep" in joined


def test_snap001_missing_roundtrip_attrs(bad_findings):
    hits = _of(bad_findings, "SNAP001", "snap_bad.py")
    attrs = sorted(f.message.split("'")[1] for f in hits)
    assert attrs == ["_history", "_last_seen"]
    # _last_seen is mutated only through a local alias; the alias must be
    # resolved back to the attribute.
    assert all("BadTracker" in f.message for f in hits)


def test_parity001_uncovered_gated_module(bad_findings):
    hits = _of(bad_findings, "PARITY001", "parity_bad.py")
    assert len(hits) == 1
    assert "fixpkg.parity_bad" in hits[0].message
    assert "never referenced" in hits[0].message


def test_parity002_vectorized_without_gate(bad_findings):
    hits = _of(bad_findings, "PARITY002", "parity_ungated.py")
    assert len(hits) == 1
    assert "UngatedFilter" in hits[0].message


def test_drift001_undocumented_flag(bad_findings):
    hits = _of(bad_findings, "DRIFT001", "drift_bad.py")
    assert len(hits) == 1
    assert "--widget-level" in hits[0].message


def test_drift002_undocumented_metric(bad_findings):
    hits = _of(bad_findings, "DRIFT002", "drift_bad.py")
    assert len(hits) == 1
    assert "repro_fixture_widgets_total" in hits[0].message


def test_lint001_unused_import(bad_findings):
    hits = _of(bad_findings, "LINT001", "lint_bad.py")
    assert len(hits) == 1
    assert "'os'" in hits[0].message


def test_findings_carry_location_and_suggestion(bad_findings):
    for f in bad_findings:
        assert f.file.startswith("src/fixpkg/")
        assert f.line >= 1
        assert f.message
        assert f.suggestion
        d = f.to_dict()
        assert d["rule"] == f.rule and d["line"] == f.line


# ---------------------------------------------------------------------------
# good fixture tree: the repaired twins stay silent, per family


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_good_tree_silent_per_rule(good_findings, rule_id):
    assert _of(good_findings, rule_id) == []


def test_good_tree_fully_silent(good_findings):
    assert good_findings == []


# ---------------------------------------------------------------------------
# real tree: clean modulo the committed baseline, fixed bugs stay fixed


def test_real_tree_clean_modulo_baseline(repo_findings):
    baseline = load_baseline(REPO / "ANALYSIS_baseline.json")
    unsuppressed, suppressed, stale = baseline.partition(repo_findings)
    assert unsuppressed == [], [f.describe() for f in unsuppressed]
    assert stale == [], [s.describe() for s in stale]
    assert suppressed  # the baseline documents real, intentional patterns


def test_real_tree_parses_everywhere():
    index = CodeIndex.build(REPO)
    assert index.errors == []
    assert "repro.serving.hub" in index.modules


def test_fixed_register_is_not_blocking_on_event_loop(repo_findings):
    # Regression: aioserver._on_hello used to call hub.register() directly
    # on the event loop; it now goes through asyncio.to_thread.
    hits = _of(repo_findings, "CONC004", "aioserver.py")
    assert not any("register" in f.message for f in hits)


def test_fixed_process_hub_map_publication(repo_findings):
    # Regression: _trackers / _pending_migrations / _migrations used to be
    # written outside _map_lock in ProcessTrackingHub.
    hits = _of(repo_findings, "CONC002", "process_hub.py")
    joined = " ".join(f.message for f in hits)
    for attr in ("'_trackers'", "'_pending_migrations'", "'_migrations'"):
        assert attr not in joined


def test_fixed_hub_migration_counter(repo_findings):
    hits = _of(repo_findings, "CONC002", "src/repro/serving/hub.py")
    assert not any("'_migrations'" in f.message for f in hits)


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON, baseline semantics, end-to-end seeded bug


def test_cli_check_clean_on_committed_tree():
    proc = _run_cli(["--check"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_unknown_rule_is_usage_error():
    proc = _run_cli(["--rule", "NOPE999"])
    assert proc.returncode == 2
    assert "NOPE999" in proc.stderr


def test_cli_rule_subset_skips_stale_reporting():
    proc = _run_cli(["--rule", "LINT001", "--check"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 stale suppression(s)" in proc.stdout


def test_cli_baseline_without_reason_is_usage_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({
        "suppressions": [{"rule": "CONC001", "file": "x.py", "reason": "  "}]
    }))
    proc = _run_cli(["--check", "--baseline", str(bad)])
    assert proc.returncode == 2
    assert "reason" in proc.stderr


def test_cli_json_report_shape():
    proc = _run_cli(["--json"])
    assert proc.returncode == 0
    report = json.loads(proc.stdout)
    assert report["findings"] == []
    assert report["parse_errors"] == []
    assert len(report["suppressed"]) >= 1
    for entry in report["suppressed"]:
        assert {"rule", "file", "line", "message"} <= set(entry)


def test_cli_list_names_every_rule():
    proc = _run_cli(["--list"])
    assert proc.returncode == 0
    for rule_id in ALL_RULES:
        assert rule_id in proc.stdout


def test_deleting_any_suppression_fails_the_gate(tmp_path):
    """Acceptance: removing one baseline entry must flip --check to exit 1
    and the output must name the now-unsuppressed rule and file:line."""
    raw = json.loads((REPO / "ANALYSIS_baseline.json").read_text())
    removed = raw["suppressions"].pop(0)
    trimmed = tmp_path / "baseline.json"
    trimmed.write_text(json.dumps(raw))
    proc = _run_cli(["--check", "--baseline", str(trimmed)])
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert removed["rule"] in proc.stdout
    assert removed["file"] in proc.stdout
    # findings print file:line locations
    assert f"{removed['file']}:" in proc.stdout


def test_seeded_bug_in_copied_tree_fails_the_gate(tmp_path):
    """Acceptance: re-introducing a seeded bad fixture into a copy of the
    real tree makes --check exit non-zero naming the rule and file."""
    root = tmp_path / "tree"
    shutil.copytree(
        REPO / "src",
        root / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    (root / "docs").mkdir()
    (root / "tests").mkdir()
    for rel in (
        "README.md",
        "docs/ARCHITECTURE.md",
        "tests/test_event_path_parity.py",
        "ANALYSIS_baseline.json",
    ):
        shutil.copy(REPO / rel, root / rel)

    clean = _run_cli(["--check", "--root", str(root)])
    assert clean.returncode == 0, clean.stdout + clean.stderr

    seeded_rel = "src/repro/serving/_seeded_bad.py"
    shutil.copy(BAD / "src/fixpkg/conc_bad.py", root / seeded_rel)
    proc = _run_cli(["--check", "--root", str(root)])
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "CONC001" in proc.stdout
    assert seeded_rel in proc.stdout
