"""Tests for the recorded-dataset layer: manifests, export, replay parity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets.recorded import (
    MANIFEST_NAME,
    DatasetManifest,
    RecordingEntry,
    discover_datasets,
    export_fleet,
    load_manifest,
)
from repro.runtime.runner import RunnerConfig, StreamRunner
from repro.runtime.scenes import (
    build_scene_recordings,
    jobs_from_manifest,
    jobs_from_recordings,
)


@pytest.fixture(scope="module")
def fleet():
    """A small deterministic fleet shared by the module's tests."""
    return build_scene_recordings(2, duration_s=1.0, base_seed=7)


@pytest.fixture()
def dataset(tmp_path, fleet):
    """The fleet exported as an npz-backed dataset."""
    return export_fleet(fleet, tmp_path / "dataset", name="unit-fleet")


class TestRecordingEntry:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown event format"):
            RecordingEntry(
                name="a", events_file="a.bin", format="bogus",
                width=240, height=180, num_events=0, duration_us=0,
            )

    def test_malformed_roe_row_rejected(self):
        with pytest.raises(ValueError, match="roe_boxes"):
            RecordingEntry(
                name="a", events_file="a.npz", format="npz",
                width=240, height=180, num_events=0, duration_us=0,
                roe_boxes=[[1.0, 2.0, 3.0]],  # missing height
            )

    def test_from_dict_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            RecordingEntry.from_dict({"name": "a"}, source="m.json")

    def test_round_trip(self):
        entry = RecordingEntry(
            name="a", events_file="a.npz", format="npz",
            width=240, height=180, num_events=10, duration_us=1000,
            annotations_file="a.json", scene_tags=["eng"],
            roe_boxes=[[0.0, 1.0, 2.0, 3.0]], metadata={"seed": 3},
        )
        again = RecordingEntry.from_dict(entry.to_dict())
        assert again == entry
        assert again.roe_bounding_boxes()[0].width == 2.0


class TestExportAndLoad:
    def test_manifest_lists_every_recording(self, dataset, fleet):
        assert len(dataset) == len(fleet)
        assert [e.name for e in dataset] == [r.name for r in fleet]
        assert dataset.manifest_path.exists()

    def test_events_round_trip_exactly(self, dataset, fleet):
        for recording in fleet:
            loaded = dataset.load_entry(recording.name)
            np.testing.assert_array_equal(
                loaded.stream.events, recording.stream.events
            )
            assert loaded.stream.resolution == recording.stream.resolution

    def test_annotations_round_trip_exactly(self, dataset, fleet):
        for recording in fleet:
            loaded = dataset.load_entry(recording.name)
            assert loaded.annotations is not None
            source = recording.annotations
            assert (
                loaded.annotations.annotation_interval_us
                == source.annotation_interval_us
            )
            assert [f.to_dict() for f in loaded.annotations.frames] == [
                f.to_dict() for f in source.frames
            ]

    def test_roe_boxes_round_trip(self, dataset, fleet):
        for recording in fleet:
            loaded = dataset.load_entry(recording.name)
            assert loaded.roe_boxes == recording.roe_boxes()

    def test_scene_tags_and_metadata(self, dataset):
        entry = dataset.recordings[0]
        assert entry.scene_tags == ["eng"]
        assert entry.metadata["site"] == "ENG"
        assert dataset.filtered("eng") == [entry]

    @pytest.mark.parametrize("format", ["npz", "csv", "aedat2", "txt"])
    def test_every_format_round_trips(self, tmp_path, fleet, format):
        manifest = export_fleet(
            fleet[:1], tmp_path / format, format=format, name=f"fmt-{format}"
        )
        loaded = manifest.load_entry(fleet[0].name)
        np.testing.assert_array_equal(loaded.stream.events, fleet[0].stream.events)

    def test_unknown_export_format_rejected(self, tmp_path, fleet):
        with pytest.raises(ValueError, match="unknown event format"):
            export_fleet(fleet, tmp_path / "x", format="bogus")

    def test_load_all_and_summary(self, dataset, fleet):
        loaded = dataset.load_all()
        assert [r.name for r in loaded] == [r.name for r in fleet]
        summary = dataset.summary()
        assert summary["num_recordings"] == len(fleet)
        assert summary["annotated"] == len(fleet)
        assert summary["formats"] == ["npz"]
        table = dataset.format_table()
        assert fleet[0].name in table


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match=MANIFEST_NAME):
            DatasetManifest.load(tmp_path)

    def test_invalid_json(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            DatasetManifest.load(tmp_path)

    def test_unsupported_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"manifest_version": 99, "recordings": []})
        )
        with pytest.raises(ValueError, match="manifest_version 99"):
            DatasetManifest.load(tmp_path)

    def test_missing_recordings_key(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"manifest_version": 1}))
        with pytest.raises(ValueError, match="recordings"):
            DatasetManifest.load(tmp_path)

    def test_duplicate_names_rejected(self, tmp_path):
        entry = {
            "name": "a", "events_file": "a.npz", "format": "npz",
            "width": 240, "height": 180,
        }
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"manifest_version": 1, "recordings": [entry, entry]})
        )
        with pytest.raises(ValueError, match="duplicate"):
            DatasetManifest.load(tmp_path)

    def test_missing_event_file(self, dataset):
        entry = dataset.recordings[0]
        (dataset.root / entry.events_file).unlink()
        with pytest.raises(FileNotFoundError, match="missing event file"):
            dataset.load_entry(entry)

    def test_stale_event_count_detected(self, dataset, fleet):
        from repro.events.io import save_events_npz
        from repro.events.stream import EventStream

        entry = dataset.recordings[0]
        truncated = EventStream(
            fleet[0].stream.events[:10].copy(), 240, 180
        )
        save_events_npz(dataset.root / entry.events_file, truncated)
        with pytest.raises(ValueError, match="stale or truncated"):
            dataset.load_entry(entry)

    def test_unknown_entry_name(self, dataset):
        with pytest.raises(KeyError, match="no recording"):
            dataset.entry("nope")


class TestDiscovery:
    def test_discover_finds_nested_datasets(self, tmp_path, fleet):
        export_fleet(fleet[:1], tmp_path / "a", name="a")
        export_fleet(fleet[:1], tmp_path / "nested" / "b", name="b")
        found = discover_datasets(tmp_path)
        assert found == sorted([tmp_path / "a", tmp_path / "nested" / "b"])
        assert load_manifest(found[0]).name == "a"

    def test_discover_missing_root(self, tmp_path):
        assert discover_datasets(tmp_path / "nowhere") == []


class TestReplayParity:
    """The acceptance criterion: export → replay reproduces the source
    fleet's pooled CLEAR-MOT digits exactly."""

    def test_replay_matches_direct_run_exactly(self, dataset, fleet):
        runner = StreamRunner(RunnerConfig(executor="serial"))
        direct = runner.run(jobs_from_recordings(fleet))
        replayed = runner.run(jobs_from_manifest(dataset))

        direct_mot = direct.mot
        replay_mot = replayed.mot
        assert replay_mot is not None
        assert replay_mot.to_dict() == direct_mot.to_dict()
        for direct_rec, replay_rec in zip(direct.recordings, replayed.recordings):
            left = direct_rec.to_dict()
            right = replay_rec.to_dict()
            # Wall-clock-derived fields are the only legitimate difference.
            for volatile in ("wall_time_s", "events_per_second", "realtime_factor"):
                left.pop(volatile)
                right.pop(volatile)
            assert left == right

    def test_jobs_from_manifest_accepts_path_and_cycles_trackers(self, dataset):
        jobs = jobs_from_manifest(str(dataset.root), trackers=("overlap", "kalman"))
        assert [job.config.tracker for job in jobs] == ["overlap", "kalman"]
        assert all(job.ground_truth for job in jobs)
        # The stored ROE boxes made it into the pipeline config.
        assert jobs[0].config.roe_boxes


class TestDatasetCli:
    def test_export_show_list_round_trip(self, tmp_path, capsys):
        from repro.datasets.__main__ import main

        out = tmp_path / "cli-dataset"
        assert main(
            ["export", "--scenes", "1", "--duration", "1", "--out", str(out)]
        ) == 0
        assert (out / MANIFEST_NAME).exists()
        assert main(["show", str(out)]) == 0
        assert "ENG-00" in capsys.readouterr().out
        assert main(["list", str(tmp_path)]) == 0
        assert "cli-dataset" in capsys.readouterr().out

    def test_show_missing_dataset_errors(self, tmp_path, capsys):
        from repro.datasets.__main__ import main

        assert main(["show", str(tmp_path / "nope")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_export_rejects_bad_args(self, capsys, tmp_path):
        from repro.datasets.__main__ import main

        assert main(["export", "--scenes", "0", "--out", str(tmp_path / "x")]) == 2


class TestRuntimeDatasetCli:
    def test_dataset_replay_cli(self, tmp_path, fleet, capsys):
        from repro.runtime.__main__ import main

        manifest = export_fleet(fleet, tmp_path / "ds", name="cli")
        json_path = tmp_path / "fleet.json"
        exit_code = main(
            [
                "--dataset",
                str(manifest.root),
                "--executor",
                "serial",
                "--output",
                str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["fleet"]["num_recordings"] == len(fleet)
        assert payload["fleet"]["mot"] is not None
        assert [r["name"] for r in payload["recordings"]] == [r.name for r in fleet]

    def test_dataset_cli_error_on_missing_dir(self, tmp_path, capsys):
        from repro.runtime.__main__ import main

        assert main(["--dataset", str(tmp_path / "missing")]) == 2
        assert "manifest" in capsys.readouterr().err
