"""Tests for the ``repro.bench`` perf-regression harness."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCENARIOS,
    BenchProfile,
    build_report,
    calibrate,
    compare_reports,
    dump_report,
    load_report,
    parse_scenario_list,
)
from repro.bench.__main__ import main as bench_main

#: Tiny sizes so the whole module stays in test-suite time budget.
TINY = BenchProfile(
    name="tiny",
    scenes=3,
    duration_s=0.4,
    filter_events=6_000,
    filter_scalar_events=1_500,
    serving_sensors=2,
)


def make_report(scenarios):
    return {
        "benchmark": "event_path",
        "version": 1,
        "profile": "tiny",
        "calibration": {"score": 10.0},
        "scenarios": scenarios,
    }


class TestScenarios:
    def test_filter_scenarios_report_speedup(self):
        for name in ("nn_filter", "refractory"):
            metrics = SCENARIOS[name](TINY)
            assert metrics["events_per_s"] > 0
            assert metrics["scalar_events_per_s"] > 0
            assert metrics["speedup_vs_scalar"] > 0
            assert metrics["primary"] in metrics

    def test_ebms_scenario_reports_speedup(self):
        metrics = SCENARIOS["ebms_pipeline"](TINY)
        assert metrics["frames_per_s"] > 0
        assert metrics["scalar_frames_per_s"] > 0
        assert metrics["speedup_vs_scalar"] > 0

    def test_overlap_and_serving_scenarios(self):
        overlap = SCENARIOS["overlap_pipeline"](TINY)
        assert overlap["events_per_s"] > 0
        serving = SCENARIOS["serving"](TINY)
        assert serving["events_per_s_1"] > 0
        assert serving["events_per_s_n"] > 0

    def test_dataset_replay_scenario(self):
        metrics = SCENARIOS["dataset_replay"](TINY)
        assert metrics["primary"] == "events_per_s"
        assert metrics["events_per_s"] > 0
        assert metrics["load_events_per_s"] > 0
        assert metrics["replay_events_per_s"] > 0
        assert metrics["num_recordings"] == TINY.scenes
        assert metrics["num_events"] > 0

    def test_parse_scenario_list(self):
        assert parse_scenario_list("nn_filter, ebms_pipeline") == [
            "nn_filter",
            "ebms_pipeline",
        ]
        with pytest.raises(ValueError):
            parse_scenario_list("bogus")
        with pytest.raises(ValueError):
            parse_scenario_list(" , ")


class TestCalibrationAndReport:
    def test_calibrate_shape(self):
        calibration = calibrate()
        assert calibration["score"] > 0
        assert calibration["numpy_s"] > 0
        assert calibration["python_s"] > 0

    def test_report_round_trip(self, tmp_path):
        report = build_report(TINY, {"x": {"primary": "v", "v": 1.0}}, {"score": 2.0})
        path = tmp_path / "report.json"
        dump_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded == json.loads(json.dumps(report))
        assert load_report(str(tmp_path / "missing.json")) is None


class TestCompareMetric:
    def test_up_metric_regresses_on_drop_beyond_margin(self):
        from repro.bench.compare import compare_metric

        assert compare_metric("s", "m", 60.0, 100.0, tolerance=0.3).regressed
        assert not compare_metric("s", "m", 71.0, 100.0, tolerance=0.3).regressed

    def test_down_metric_regresses_on_rise_beyond_margin(self):
        from repro.bench.compare import compare_metric

        up = compare_metric("s", "m", 140.0, 100.0, tolerance=0.3, direction="down")
        assert up.regressed
        drop = compare_metric("s", "m", 10.0, 100.0, tolerance=0.3, direction="down")
        assert not drop.regressed

    def test_floor_makes_margin_absolute_near_zero(self):
        from repro.bench.compare import compare_metric

        relative = compare_metric("s", "m", -0.04, 0.01, tolerance=0.1)
        assert relative.regressed  # margin 0.001: any real drop trips it
        floored = compare_metric("s", "m", -0.04, 0.01, tolerance=0.1, floor=1.0)
        assert not floored.regressed  # margin 0.1 absolute

    def test_invalid_direction_and_tolerance_rejected(self):
        from repro.bench.compare import compare_metric

        with pytest.raises(ValueError, match="direction"):
            compare_metric("s", "m", 1.0, 1.0, tolerance=0.1, direction="sideways")
        with pytest.raises(ValueError, match="tolerance"):
            compare_metric("s", "m", 1.0, 1.0, tolerance=-0.1)

    def test_zero_baseline_ratio_conventions(self):
        from repro.bench.compare import compare_metric

        assert compare_metric("s", "m", 0.0, 0.0, tolerance=0.1).ratio == 1.0
        assert compare_metric("s", "m", 2.0, 0.0, tolerance=0.1).ratio == float("inf")


class TestCompareReports:
    def test_no_regression_when_equal(self):
        report = make_report(
            {"s": {"primary": "v", "v": 100.0, "speedup_vs_scalar": 8.0}}
        )
        comparisons = compare_reports(report, report, tolerance=0.3)
        assert len(comparisons) == 2
        assert not any(c.regressed for c in comparisons)

    def test_throughput_regression_detected(self):
        baseline = make_report({"s": {"primary": "v", "v": 100.0}})
        current = make_report({"s": {"primary": "v", "v": 50.0}})
        comparisons = compare_reports(current, baseline, tolerance=0.3)
        assert [c.regressed for c in comparisons] == [True]

    def test_speedup_regression_detected(self):
        baseline = make_report(
            {"s": {"primary": "v", "v": 100.0, "speedup_vs_scalar": 10.0}}
        )
        current = make_report(
            {"s": {"primary": "v", "v": 100.0, "speedup_vs_scalar": 2.0}}
        )
        comparisons = compare_reports(current, baseline, tolerance=0.3)
        regressed = {c.metric: c.regressed for c in comparisons}
        assert regressed["speedup_vs_scalar"] is True
        assert regressed["v"] is False

    def test_calibration_normalizes_machine_speed(self):
        # Same code on a machine half as fast: throughput halves, score
        # halves, no regression flagged.
        baseline = make_report({"s": {"primary": "v", "v": 100.0}})
        current = make_report({"s": {"primary": "v", "v": 50.0}})
        current["calibration"] = {"score": 5.0}
        comparisons = compare_reports(current, baseline, tolerance=0.3)
        assert not any(c.regressed for c in comparisons)

    def test_missing_scenarios_are_skipped(self):
        baseline = make_report({"a": {"primary": "v", "v": 1.0}})
        current = make_report({"b": {"primary": "v", "v": 1.0}})
        assert compare_reports(current, baseline) == []

    def test_invalid_tolerance_rejected(self):
        report = make_report({})
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance=1.5)


class TestCli:
    def test_list_scenarios(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_errors(self, capsys):
        assert bench_main(["--scenarios", "bogus"]) == 2

    def test_check_without_baseline_fails(self, tmp_path, capsys, monkeypatch):
        # A gate with nothing to gate against must not silently pass.
        import repro.bench.__main__ as cli

        monkeypatch.setattr(cli, "QUICK_PROFILE", TINY)
        code = bench_main(
            [
                "--quick",
                "--check",
                "--scenarios",
                "refractory",
                "--baseline",
                str(tmp_path / "missing.json"),
                "--output",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 2

    def test_check_with_nothing_comparable_fails(self, tmp_path, monkeypatch):
        import repro.bench.__main__ as cli

        monkeypatch.setattr(cli, "QUICK_PROFILE", TINY)
        baseline_path = tmp_path / "baseline.json"
        dump_report(make_report({"unrelated": {"primary": "v", "v": 1.0}}), str(baseline_path))
        code = bench_main(
            [
                "--quick",
                "--check",
                "--scenarios",
                "refractory",
                "--baseline",
                str(baseline_path),
                "--output",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 2

    def test_check_fails_on_regression(self, tmp_path, capsys, monkeypatch):
        # Fabricate an absurdly fast committed baseline, then run a real
        # tiny benchmark against it: the check must fail.
        import repro.bench.__main__ as cli

        monkeypatch.setattr(cli, "QUICK_PROFILE", TINY)
        baseline_path = tmp_path / "baseline.json"
        dump_report(
            make_report(
                {
                    "nn_filter": {
                        "primary": "events_per_s",
                        "events_per_s": 1e15,
                        "speedup_vs_scalar": 1e6,
                    }
                }
            ),
            str(baseline_path),
        )
        out_path = tmp_path / "report.json"
        code = bench_main(
            [
                "--quick",
                "--check",
                "--scenarios",
                "nn_filter",
                "--baseline",
                str(baseline_path),
                "--output",
                str(out_path),
            ]
        )
        assert code == 1
        assert out_path.exists()
        written = load_report(str(out_path))
        assert "nn_filter" in written["scenarios"]
