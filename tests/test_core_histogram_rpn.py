"""Tests for the histogram region-proposal network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.histogram_rpn import (
    HistogramRegionProposer,
    compute_histograms,
    downsample_binary_frame,
    find_runs_above_threshold,
)


def _frame_with_block(x, y, w, h, width=240, height=180):
    frame = np.zeros((height, width), dtype=np.uint8)
    frame[y : y + h, x : x + w] = 1
    return frame


class TestDownsampling:
    def test_block_sums(self):
        frame = np.zeros((6, 12), dtype=np.uint8)
        frame[0:3, 0:6] = 1
        down = downsample_binary_frame(frame, s1=6, s2=3)
        assert down.shape == (2, 2)
        assert down[0, 0] == 18
        assert down[0, 1] == 0
        assert down[1, 0] == 0

    def test_total_preserved_for_divisible_shapes(self):
        rng = np.random.default_rng(0)
        frame = (rng.random((180, 240)) < 0.2).astype(np.uint8)
        down = downsample_binary_frame(frame, 6, 3)
        assert down.sum() == frame.sum()
        assert down.shape == (60, 40)

    def test_partial_blocks_dropped(self):
        frame = np.ones((7, 13), dtype=np.uint8)
        down = downsample_binary_frame(frame, 6, 3)
        assert down.shape == (2, 2)
        assert down.sum() == 2 * 2 * 18

    def test_identity_downsampling(self):
        frame = np.eye(4, dtype=np.uint8)
        np.testing.assert_array_equal(downsample_binary_frame(frame, 1, 1), frame)

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            downsample_binary_frame(np.zeros((10, 10)), 0, 1)
        with pytest.raises(ValueError):
            downsample_binary_frame(np.zeros((10, 10)), 20, 20)
        with pytest.raises(ValueError):
            downsample_binary_frame(np.zeros(10), 2, 2)

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(6, 36).filter(lambda v: v % 3 == 0),
                st.integers(6, 48).filter(lambda v: v % 6 == 0),
            ),
            elements=st.integers(0, 1),
        )
    )
    def test_property_sum_preserved(self, frame):
        down = downsample_binary_frame(frame, 6, 3)
        assert down.sum() == frame.sum()


class TestHistogramsAndRuns:
    def test_histograms_are_projections(self):
        down = np.array([[1, 0, 2], [0, 3, 0]])
        hist_x, hist_y = compute_histograms(down)
        np.testing.assert_array_equal(hist_x, [1, 3, 2])
        np.testing.assert_array_equal(hist_y, [3, 3])

    def test_find_runs_simple(self):
        histogram = np.array([0, 0, 2, 3, 1, 0, 5, 0])
        assert find_runs_above_threshold(histogram, 1) == [(2, 5), (6, 7)]

    def test_find_runs_threshold(self):
        histogram = np.array([1, 1, 3, 3, 1])
        assert find_runs_above_threshold(histogram, 2) == [(2, 4)]

    def test_find_runs_all_below(self):
        assert find_runs_above_threshold(np.zeros(5), 1) == []

    def test_find_runs_all_above(self):
        assert find_runs_above_threshold(np.ones(4), 1) == [(0, 4)]

    def test_find_runs_requires_1d(self):
        with pytest.raises(ValueError):
            find_runs_above_threshold(np.zeros((2, 2)), 1)

    @given(
        hnp.arrays(dtype=np.int32, shape=st.integers(1, 60), elements=st.integers(0, 5)),
        st.integers(1, 4),
    )
    def test_property_runs_cover_exactly_above_threshold_bins(self, histogram, threshold):
        runs = find_runs_above_threshold(histogram, threshold)
        covered = np.zeros(len(histogram), dtype=bool)
        for start, end in runs:
            assert start < end
            covered[start:end] = True
        np.testing.assert_array_equal(covered, histogram >= threshold)


class TestHistogramRegionProposer:
    def test_single_object_single_proposal(self):
        proposer = HistogramRegionProposer()
        frame = _frame_with_block(60, 60, 40, 20)
        proposals = proposer.propose(frame)
        assert len(proposals) == 1
        box = proposals[0].box
        assert box.x <= 60 and box.x2 >= 100
        assert box.y <= 60 and box.y2 >= 80
        assert proposals[0].event_count == 40 * 20

    def test_boxes_quantised_to_downsample_grid(self):
        proposer = HistogramRegionProposer(downsample_x=6, downsample_y=3)
        proposals = proposer.propose(_frame_with_block(61, 61, 30, 15))
        box = proposals[0].box
        assert box.x % 6 == 0
        assert box.y % 3 == 0

    def test_two_separated_objects(self):
        frame = _frame_with_block(20, 30, 30, 20) + _frame_with_block(150, 120, 40, 25)
        proposals = HistogramRegionProposer().propose(frame)
        assert len(proposals) == 2

    def test_false_cross_regions_suppressed(self):
        """Two objects sharing no X or Y range create 4 candidate crossings;
        the two empty ones must be rejected by the image check."""
        frame = _frame_with_block(20, 30, 30, 20) + _frame_with_block(150, 120, 40, 25)
        proposals = HistogramRegionProposer(min_event_count=3).propose(frame)
        for proposal in proposals:
            assert proposal.event_count >= 3
        assert len(proposals) == 2

    def test_fragmented_object_merged_by_coarse_bins(self):
        """Two nearby fragments of one vehicle merge into one proposal."""
        frame = _frame_with_block(60, 60, 10, 20) + _frame_with_block(74, 60, 10, 20)
        proposals = HistogramRegionProposer(downsample_x=6, downsample_y=3).propose(frame)
        assert len(proposals) == 1
        assert proposals[0].box.width >= 24

    def test_empty_frame_no_proposals(self):
        assert HistogramRegionProposer().propose(np.zeros((180, 240), dtype=np.uint8)) == []

    def test_sparse_noise_no_proposals(self):
        frame = np.zeros((180, 240), dtype=np.uint8)
        frame[10, 10] = 1
        frame[100, 200] = 1
        proposals = HistogramRegionProposer(min_event_count=3).propose(frame)
        assert proposals == []

    def test_proposals_sorted_by_event_count(self):
        frame = _frame_with_block(20, 30, 20, 10) + _frame_with_block(150, 120, 50, 40)
        proposals = HistogramRegionProposer().propose(frame)
        counts = [p.event_count for p in proposals]
        assert counts == sorted(counts, reverse=True)

    def test_min_region_side_filters_thin_regions(self):
        frame = _frame_with_block(60, 60, 40, 20)
        proposer = HistogramRegionProposer(min_region_side_px=1000)
        assert proposer.propose(frame) == []

    def test_debug_histograms_shapes(self):
        proposer = HistogramRegionProposer(downsample_x=6, downsample_y=3)
        down, hist_x, hist_y = proposer.debug_histograms(
            np.zeros((180, 240), dtype=np.uint8)
        )
        assert down.shape == (60, 40)
        assert hist_x.shape == (40,)
        assert hist_y.shape == (60,)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            HistogramRegionProposer(downsample_x=0)
        with pytest.raises(ValueError):
            HistogramRegionProposer(threshold=0)
        with pytest.raises(ValueError):
            HistogramRegionProposer(min_event_count=0)

    def test_density_computed(self):
        proposals = HistogramRegionProposer().propose(_frame_with_block(60, 60, 30, 15))
        assert 0 < proposals[0].density <= 1.0

    def test_proposal_to_dict(self):
        proposal = HistogramRegionProposer().propose(_frame_with_block(60, 60, 30, 15))[0]
        data = proposal.to_dict()
        assert set(data) == {"x", "y", "width", "height", "event_count", "density"}


class TestFrameHistograms:
    @given(
        frame=hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(min_value=6, max_value=60),
                st.integers(min_value=6, max_value=60),
            ),
            elements=st.integers(min_value=0, max_value=1),
        ),
        s1=st.integers(min_value=1, max_value=6),
        s2=st.integers(min_value=1, max_value=6),
    )
    def test_matches_downsample_then_sum(self, frame, s1, s2):
        from repro.core.histogram_rpn import frame_histograms

        hx, hy = frame_histograms(frame, s1, s2)
        expected_hx, expected_hy = compute_histograms(
            downsample_binary_frame(frame, s1, s2)
        )
        np.testing.assert_array_equal(hx, expected_hx)
        np.testing.assert_array_equal(hy, expected_hy)

    def test_rejects_bad_factors(self):
        from repro.core.histogram_rpn import frame_histograms

        with pytest.raises(ValueError):
            frame_histograms(np.zeros((10, 10), dtype=np.uint8), 0, 1)
        with pytest.raises(ValueError):
            frame_histograms(np.zeros((4, 4), dtype=np.uint8), 8, 8)
        with pytest.raises(ValueError):
            frame_histograms(np.zeros(10, dtype=np.uint8), 1, 1)


def _reference_propose(proposer: HistogramRegionProposer, frame: np.ndarray):
    """The seed's per-candidate loop, kept as the behavioural reference."""
    from repro.utils.geometry import BoundingBox
    from repro.core.histogram_rpn import RegionProposal

    downsampled = downsample_binary_frame(
        frame, proposer.downsample_x, proposer.downsample_y
    )
    histogram_x, histogram_y = compute_histograms(downsampled)
    x_runs = find_runs_above_threshold(histogram_x, proposer.threshold)
    y_runs = find_runs_above_threshold(histogram_y, proposer.threshold)
    if not x_runs or not y_runs:
        return []
    proposals = []
    height, width = frame.shape
    for x_start_bin, x_end_bin in x_runs:
        for y_start_bin, y_end_bin in y_runs:
            x1 = x_start_bin * proposer.downsample_x
            x2 = min(x_end_bin * proposer.downsample_x, width)
            y1 = y_start_bin * proposer.downsample_y
            y2 = min(y_end_bin * proposer.downsample_y, height)
            bw, bh = x2 - x1, y2 - y1
            if bw < proposer.min_region_side_px or bh < proposer.min_region_side_px:
                continue
            event_count = int(np.count_nonzero(frame[y1:y2, x1:x2]))
            if event_count < proposer.min_event_count:
                continue
            box = BoundingBox(float(x1), float(y1), float(bw), float(bh))
            proposals.append(
                RegionProposal(
                    box=box,
                    event_count=event_count,
                    density=event_count / box.area if box.area > 0 else 0.0,
                )
            )
    proposals.sort(key=lambda p: p.event_count, reverse=True)
    return proposals


class TestVectorizedProposeEquivalence:
    @settings(deadline=None, max_examples=40)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        density=st.floats(min_value=0.0, max_value=0.15),
    )
    def test_matches_reference_loop_on_random_frames(self, seed, density):
        rng = np.random.default_rng(seed)
        frame = (rng.random((90, 120)) < density).astype(np.uint8)
        proposer = HistogramRegionProposer(downsample_x=6, downsample_y=3)
        got = proposer.propose(frame)
        expected = _reference_propose(proposer, frame)
        assert got == expected

    def test_matches_reference_on_multi_object_frame(self):
        frame = np.zeros((180, 240), dtype=np.uint8)
        frame[30:60, 20:70] = 1    # car
        frame[100:120, 150:170] = 1  # bike
        frame[40:55, 160:200] = 1   # second car sharing y band with the first
        proposer = HistogramRegionProposer()
        assert proposer.propose(frame) == _reference_propose(proposer, frame)
