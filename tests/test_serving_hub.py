"""Tests for the sharded :class:`TrackingHub` and the telemetry registry."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.serving import HubConfig, TrackingHub
from repro.serving.telemetry import LatencyWindow, TelemetryRegistry


def _moving_block_stream(seed: int, num_frames: int = 10) -> EventStream:
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        x0 = 20 + 3 * frame_index
        y0 = 40 + (seed % 60)
        t = frame_index * 66_000 + 10_000
        for dy in range(6):
            for dx in range(6):
                xs.append(x0 + dx)
                ys.append(y0 + dy)
                ts.append(t + int(rng.integers(0, 40_000)))
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, 240, 180)


def _batches(stream: EventStream, batch_us: int = 22_000):
    events = stream.events
    for lo in range(0, int(events["t"][-1]) + 1, batch_us):
        i0, i1 = np.searchsorted(events["t"], [lo, lo + batch_us])
        if i1 > i0:
            yield events[i0:i1]


class TestHubConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            HubConfig(num_workers=0)
        with pytest.raises(ValueError):
            HubConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            HubConfig(backpressure="retry")
        with pytest.raises(ValueError):
            HubConfig(reorder_slack_us=-1)


class TestTrackingHub:
    def test_multi_sensor_results_match_batch_pipeline(self):
        streams = {f"sensor-{i}": _moving_block_stream(seed=i) for i in range(6)}
        with TrackingHub(HubConfig(num_workers=3)) as hub:
            for sensor_id in streams:
                hub.register(sensor_id)
            for sensor_id, stream in streams.items():
                for batch in _batches(stream):
                    assert hub.submit(sensor_id, batch)
            results = {sid: hub.close_sensor(sid) for sid in streams}

        for sensor_id, stream in streams.items():
            expected = EbbiotPipeline(EbbiotConfig()).process_stream(stream)
            result = results[sensor_id]
            assert result.name == sensor_id
            assert result.num_events == len(stream)
            assert result.num_frames == expected.num_frames
            assert result.num_track_observations == (
                expected.total_track_observations()
            )

    def test_frames_callback_delivers_all_frames_in_order(self):
        stream = _moving_block_stream(seed=1)
        received = []
        lock = threading.Lock()

        def on_frames(sensor_id, frames):
            with lock:
                received.extend(frames)

        with TrackingHub(HubConfig(num_workers=2)) as hub:
            hub.register("cam", on_frames=on_frames)
            for batch in _batches(stream):
                hub.submit("cam", batch)
            result = hub.close_sensor("cam")

        assert [f.frame_index for f in received] == list(range(result.num_frames))

    def test_drop_policy_sheds_batches_and_counts_them(self):
        # One shard with a one-slot queue.  The workers are deliberately not
        # running (white-box: mark the hub started without spawning them) so
        # the queue fills deterministically and the second submit must shed.
        config = HubConfig(num_workers=1, queue_capacity=1, backpressure="drop")
        stream = _moving_block_stream(seed=2)
        batches = list(_batches(stream))
        hub = TrackingHub(config)
        hub._started = True
        hub.register("cam")
        assert hub.submit("cam", batches[0]) is True
        assert hub.submit("cam", batches[1]) is False
        telemetry = hub.telemetry.get("cam").to_dict()
        assert telemetry["dropped_batches"] == 1
        assert telemetry["dropped_events"] == len(batches[1])
        assert telemetry["batches_received"] == 1

    def test_duplicate_registration_rejected(self):
        with TrackingHub() as hub:
            hub.register("cam")
            with pytest.raises(ValueError):
                hub.register("cam")

    def test_submit_to_unknown_sensor_raises(self):
        with TrackingHub() as hub:
            with pytest.raises(KeyError):
                hub.submit("ghost", _moving_block_stream(0).events[:5])
            with pytest.raises(KeyError):
                hub.close_sensor("ghost")

    def test_submit_requires_started_hub(self):
        hub = TrackingHub()
        hub.register("cam")
        with pytest.raises(RuntimeError):
            hub.submit("cam", _moving_block_stream(0).events[:5])

    def test_poisoned_batch_does_not_kill_shard(self):
        stream = _moving_block_stream(seed=4)
        bad = make_packet([500], [500], [1_000], [1])  # out of bounds coords
        with TrackingHub(HubConfig(num_workers=1)) as hub:
            hub.register("cam")
            hub.submit("cam", bad)
            for batch in _batches(stream):
                hub.submit("cam", batch)
            result = hub.close_sensor("cam", timeout=30)
        assert result.num_frames > 0
        assert hub.telemetry.get("cam").to_dict()["dropped_batches"] >= 1

    def test_shard_assignment_is_stable(self):
        hub = TrackingHub(HubConfig(num_workers=3))
        assert hub.shard_of("cam-1") == hub.shard_of("cam-1")
        shards = {hub.shard_of(f"cam-{i}") for i in range(32)}
        assert shards.issubset(set(range(3)))

    def test_batch_result_aggregates_closed_sensors(self):
        with TrackingHub(HubConfig(num_workers=2)) as hub:
            for i in range(3):
                hub.register(f"s{i}")
            for i in range(3):
                for batch in _batches(_moving_block_stream(seed=i)):
                    hub.submit(f"s{i}", batch)
            for i in range(3):
                hub.close_sensor(f"s{i}")
            batch_result = hub.batch_result()
        assert len(batch_result) == 3
        assert [r.name for r in batch_result.recordings] == ["s0", "s1", "s2"]
        assert batch_result.total_events > 0


class TestTelemetry:
    def test_latency_window_percentiles(self):
        window = LatencyWindow(capacity=100)
        for ms in range(1, 101):
            window.record(ms * 1e-3)
        assert window.count == 100
        assert window.percentile_s(50) == pytest.approx(0.0505, abs=1e-3)
        assert window.percentile_s(95) == pytest.approx(0.09505, abs=1e-3)
        assert window.to_dict()["p50_ms"] == pytest.approx(50.5, abs=1.0)

    def test_latency_window_empty(self):
        window = LatencyWindow()
        assert window.percentile_s(95) == 0.0
        assert window.mean_s == 0.0

    def test_latency_window_bounded_retention(self):
        window = LatencyWindow(capacity=10)
        for _ in range(50):
            window.record(1.0)
        window.record(2.0)
        assert window.count == 51  # lifetime count keeps growing
        assert window.percentile_s(100) == 2.0

    def test_registry_roundtrip(self):
        registry = TelemetryRegistry()
        record = registry.sensor("cam")
        record.record_batch(100)
        record.record_frames(num_frames=2, num_tracks=3, latency_s=0.01, late_events=1)
        record.record_drop(40)
        assert registry.sensor("cam") is record
        payload = registry.to_dict()
        assert payload["totals"]["num_sensors"] == 1
        assert payload["totals"]["events_received"] == 100
        assert payload["totals"]["frames_emitted"] == 2
        assert payload["totals"]["track_observations"] == 3
        assert payload["totals"]["dropped_events"] == 40
        assert payload["sensors"]["cam"]["late_events"] == 1
        assert payload["sensors"]["cam"]["frame_latency"]["count"] == 2

    def test_registry_get_unknown(self):
        assert TelemetryRegistry().get("nope") is None


class TestCloseAndRemove:
    def test_double_close_does_not_double_count_fleet(self):
        stream = _moving_block_stream(seed=6)
        with TrackingHub(HubConfig(num_workers=1)) as hub:
            hub.register("cam")
            for batch in _batches(stream):
                hub.submit("cam", batch)
            first = hub.close_sensor("cam")
            second = hub.close_sensor("cam")
            assert second.num_frames == first.num_frames
            assert second.num_events == first.num_events
            assert len(hub.batch_result()) == 1

    def test_remove_sensor_allows_id_reuse(self):
        stream = _moving_block_stream(seed=7)
        with TrackingHub(HubConfig(num_workers=1)) as hub:
            hub.register("cam")
            for batch in _batches(stream):
                hub.submit("cam", batch)
            hub.close_sensor("cam")
            hub.remove_sensor("cam")
            # Same id registers again as a fresh session.
            hub.register("cam")
            for batch in _batches(stream):
                hub.submit("cam", batch)
            result = hub.close_sensor("cam")
            assert result.num_frames > 0
