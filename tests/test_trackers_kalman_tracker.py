"""Tests for the multi-object Kalman-filter tracker (EBBI+KF baseline)."""

from __future__ import annotations

import pytest

from repro.core.histogram_rpn import RegionProposal
from repro.trackers.kalman_tracker import KalmanFilterTracker, KalmanTrackerConfig
from repro.utils.geometry import BoundingBox


def proposal(x, y, w=30, h=20):
    box = BoundingBox(x, y, w, h)
    return RegionProposal(box=box, event_count=int(box.area), density=1.0)


def run_frames(tracker, frames):
    return [
        tracker.process_frame(proposals, t_us=i * 66_000)
        for i, proposals in enumerate(frames)
    ]


class TestTrackLifecycle:
    def test_confirmation_after_min_age(self):
        tracker = KalmanFilterTracker(KalmanTrackerConfig(min_track_age_frames=2))
        outputs = run_frames(tracker, [[proposal(50, 60)], [proposal(53, 60)]])
        assert outputs[0] == []
        assert len(outputs[1]) == 1

    def test_track_dropped_after_misses(self):
        tracker = KalmanFilterTracker(KalmanTrackerConfig(max_missed_frames=2))
        run_frames(tracker, [[proposal(50, 60)], [proposal(53, 60)], [], [], []])
        assert tracker.num_active_tracks == 0

    def test_max_tracks_respected(self):
        tracker = KalmanFilterTracker(KalmanTrackerConfig(max_tracks=2))
        tracker.process_frame(
            [proposal(10, 10), proposal(80, 80), proposal(150, 150)], 0
        )
        assert tracker.num_active_tracks == 2

    def test_reset(self):
        tracker = KalmanFilterTracker()
        tracker.process_frame([proposal(10, 10)], 0)
        tracker.reset()
        assert tracker.num_active_tracks == 0
        assert tracker.mean_active_tracks == 0.0


class TestTracking:
    def test_follows_moving_object_with_stable_id(self):
        tracker = KalmanFilterTracker()
        frames = [[proposal(40 + 4 * i, 60)] for i in range(12)]
        outputs = run_frames(tracker, frames)
        track_ids = {o.track_id for frame in outputs for o in frame}
        assert len(track_ids) == 1
        final = outputs[-1][0]
        assert final.box.center[0] == pytest.approx(40 + 4 * 11 + 15, abs=6)
        assert final.velocity[0] == pytest.approx(4.0, abs=1.0)

    def test_two_objects_two_tracks(self):
        tracker = KalmanFilterTracker()
        frames = [
            [proposal(30 + 3 * i, 40), proposal(170 - 3 * i, 110)] for i in range(8)
        ]
        outputs = run_frames(tracker, frames)
        assert len(outputs[-1]) == 2

    def test_distance_fallback_match(self):
        """A fast object whose boxes no longer overlap is still matched by
        the centroid-distance fallback."""
        config = KalmanTrackerConfig(max_match_distance_px=60.0, min_track_age_frames=1)
        tracker = KalmanFilterTracker(config)
        # 40 px jump per frame: zero IoU between consecutive 30-px-wide boxes.
        frames = [[proposal(10 + 40 * i, 60)] for i in range(5)]
        outputs = run_frames(tracker, frames)
        track_ids = {o.track_id for frame in outputs for o in frame}
        assert len(track_ids) == 1

    def test_size_smoothing(self):
        config = KalmanTrackerConfig(size_smoothing=0.9, min_track_age_frames=1)
        tracker = KalmanFilterTracker(config)
        tracker.process_frame([proposal(50, 60, 30, 20)], 0)
        output = tracker.process_frame([proposal(53, 60, 60, 40)], 66_000)
        # Size moves only slowly towards the new measurement.
        assert output[0].box.width < 40

    def test_mean_active_tracks_statistic(self):
        tracker = KalmanFilterTracker()
        run_frames(tracker, [[proposal(50, 60)], [proposal(53, 60)]])
        assert tracker.mean_active_tracks == pytest.approx(1.0)


class TestConfigValidation:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            KalmanTrackerConfig(max_tracks=0)
        with pytest.raises(ValueError):
            KalmanTrackerConfig(min_iou_for_match=2.0)
        with pytest.raises(ValueError):
            KalmanTrackerConfig(max_match_distance_px=0)
        with pytest.raises(ValueError):
            KalmanTrackerConfig(size_smoothing=1.5)
