"""Tests for regions of exclusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram_rpn import RegionProposal
from repro.core.roe import RegionOfExclusion, rectangle_union_area
from repro.utils.geometry import BoundingBox


def _proposal(x, y, w, h):
    return RegionProposal(box=BoundingBox(x, y, w, h), event_count=10, density=0.1)


class TestRegionOfExclusion:
    def test_excluded_fraction(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 0, 10, 10)])
        assert roe.excluded_fraction(BoundingBox(0, 0, 10, 10)) == pytest.approx(1.0)
        assert roe.excluded_fraction(BoundingBox(5, 0, 10, 10)) == pytest.approx(0.5)
        assert roe.excluded_fraction(BoundingBox(20, 20, 5, 5)) == 0.0

    def test_is_excluded_threshold(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 0, 10, 10)], max_overlap_fraction=0.5)
        assert roe.is_excluded(BoundingBox(0, 0, 8, 8))
        assert not roe.is_excluded(BoundingBox(5, 5, 10, 10))

    def test_filter_proposals(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 140, 60, 40)])
        proposals = [_proposal(10, 150, 20, 20), _proposal(100, 60, 30, 20)]
        kept = roe.filter_proposals(proposals)
        assert len(kept) == 1
        assert kept[0].box.x == 100

    def test_empty_roe_keeps_everything(self):
        roe = RegionOfExclusion()
        proposals = [_proposal(10, 10, 5, 5)]
        assert roe.filter_proposals(proposals) == proposals
        assert roe.excluded_fraction(BoundingBox(0, 0, 5, 5)) == 0.0

    def test_add_box(self):
        roe = RegionOfExclusion()
        roe.add(BoundingBox(0, 0, 5, 5))
        assert len(roe) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RegionOfExclusion(max_overlap_fraction=1.5)

    def test_mask_and_apply(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(2, 3, 4, 5)])
        mask = roe.mask(20, 20)
        assert mask[3:8, 2:6].all()
        assert mask.sum() == 4 * 5
        frame = np.ones((20, 20), dtype=np.uint8)
        cleaned = roe.apply_to_frame(frame)
        assert cleaned[3:8, 2:6].sum() == 0
        assert cleaned.sum() == 400 - 20
        # The input frame is not modified.
        assert frame.sum() == 400

    def test_mask_clips_to_frame(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(-5, -5, 10, 10)])
        mask = roe.mask(20, 20)
        assert mask[0:5, 0:5].all()
        assert mask.sum() == 25

    def test_from_tuples(self):
        roe = RegionOfExclusion.from_tuples([(0, 0, 5, 5), (10, 10, 2, 2)])
        assert len(roe) == 2
        assert roe.boxes[1] == BoundingBox(10, 10, 2, 2)

    def test_zero_area_box_query(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 0, 10, 10)])
        assert roe.excluded_fraction(BoundingBox(1, 1, 0, 0)) == 0.0


class TestOverlappingRoeBoxes:
    """Regression tests: overlapping ROE boxes must not be double counted."""

    def test_identical_boxes_cover_half_not_all(self):
        # Two copies of the same half-covering box.  The old pairwise sum
        # reported 1.0 (fully excluded); the true union coverage is 0.5.
        half = BoundingBox(0, 0, 5, 10)
        roe = RegionOfExclusion(boxes=[half, half])
        assert roe.excluded_fraction(BoundingBox(0, 0, 10, 10)) == pytest.approx(0.5)
        assert not roe.is_excluded(BoundingBox(0, 0, 10, 10))

    def test_partially_overlapping_boxes(self):
        # Boxes [0,6]x[0,10] and [4,10]x[0,10] over a 10x10 query: union
        # covers the whole box (1.0); the pairwise sum would give 1.2
        # before capping, hiding the over-count, so probe a query box where
        # the difference is visible: [0,12]x[0,10] -> union 10/12.
        roe = RegionOfExclusion(
            boxes=[BoundingBox(0, 0, 6, 10), BoundingBox(4, 0, 6, 10)]
        )
        assert roe.excluded_fraction(BoundingBox(0, 0, 10, 10)) == pytest.approx(1.0)
        assert roe.excluded_fraction(BoundingBox(0, 0, 12, 10)) == pytest.approx(10 / 12)

    def test_nested_boxes(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 4, 4)
        roe = RegionOfExclusion(boxes=[outer, inner])
        assert roe.excluded_fraction(BoundingBox(0, 0, 20, 10)) == pytest.approx(0.5)

    def test_overcount_no_longer_flips_is_excluded(self):
        # Three boxes stacked on the same 30% strip: summed intersections
        # (90%) used to cross the 0.5 threshold; true union coverage (30%)
        # must keep the proposal.
        strip = BoundingBox(0, 0, 3, 10)
        roe = RegionOfExclusion(boxes=[strip, strip, strip])
        query = BoundingBox(0, 0, 10, 10)
        assert roe.excluded_fraction(query) == pytest.approx(0.3)
        assert not roe.is_excluded(query)

    def test_disjoint_boxes_unchanged(self):
        roe = RegionOfExclusion(
            boxes=[BoundingBox(0, 0, 2, 10), BoundingBox(5, 0, 2, 10)]
        )
        assert roe.excluded_fraction(BoundingBox(0, 0, 10, 10)) == pytest.approx(0.4)

    def test_rectangle_union_area_helper(self):
        assert rectangle_union_area([]) == 0.0
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(2, 2, 4, 4)
        assert rectangle_union_area([a]) == pytest.approx(16.0)
        assert rectangle_union_area([a, b]) == pytest.approx(28.0)
        assert rectangle_union_area([a, a, a]) == pytest.approx(16.0)
