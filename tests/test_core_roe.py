"""Tests for regions of exclusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram_rpn import RegionProposal
from repro.core.roe import RegionOfExclusion
from repro.utils.geometry import BoundingBox


def _proposal(x, y, w, h):
    return RegionProposal(box=BoundingBox(x, y, w, h), event_count=10, density=0.1)


class TestRegionOfExclusion:
    def test_excluded_fraction(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 0, 10, 10)])
        assert roe.excluded_fraction(BoundingBox(0, 0, 10, 10)) == pytest.approx(1.0)
        assert roe.excluded_fraction(BoundingBox(5, 0, 10, 10)) == pytest.approx(0.5)
        assert roe.excluded_fraction(BoundingBox(20, 20, 5, 5)) == 0.0

    def test_is_excluded_threshold(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 0, 10, 10)], max_overlap_fraction=0.5)
        assert roe.is_excluded(BoundingBox(0, 0, 8, 8))
        assert not roe.is_excluded(BoundingBox(5, 5, 10, 10))

    def test_filter_proposals(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 140, 60, 40)])
        proposals = [_proposal(10, 150, 20, 20), _proposal(100, 60, 30, 20)]
        kept = roe.filter_proposals(proposals)
        assert len(kept) == 1
        assert kept[0].box.x == 100

    def test_empty_roe_keeps_everything(self):
        roe = RegionOfExclusion()
        proposals = [_proposal(10, 10, 5, 5)]
        assert roe.filter_proposals(proposals) == proposals
        assert roe.excluded_fraction(BoundingBox(0, 0, 5, 5)) == 0.0

    def test_add_box(self):
        roe = RegionOfExclusion()
        roe.add(BoundingBox(0, 0, 5, 5))
        assert len(roe) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RegionOfExclusion(max_overlap_fraction=1.5)

    def test_mask_and_apply(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(2, 3, 4, 5)])
        mask = roe.mask(20, 20)
        assert mask[3:8, 2:6].all()
        assert mask.sum() == 4 * 5
        frame = np.ones((20, 20), dtype=np.uint8)
        cleaned = roe.apply_to_frame(frame)
        assert cleaned[3:8, 2:6].sum() == 0
        assert cleaned.sum() == 400 - 20
        # The input frame is not modified.
        assert frame.sum() == 400

    def test_mask_clips_to_frame(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(-5, -5, 10, 10)])
        mask = roe.mask(20, 20)
        assert mask[0:5, 0:5].all()
        assert mask.sum() == 25

    def test_from_tuples(self):
        roe = RegionOfExclusion.from_tuples([(0, 0, 5, 5), (10, 10, 2, 2)])
        assert len(roe) == 2
        assert roe.boxes[1] == BoundingBox(10, 10, 2, 2)

    def test_zero_area_box_query(self):
        roe = RegionOfExclusion(boxes=[BoundingBox(0, 0, 10, 10)])
        assert roe.excluded_fraction(BoundingBox(1, 1, 0, 0)) == 0.0
