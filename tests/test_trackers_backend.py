"""Tests for the tracker-backend protocol, registry and pipeline wiring.

Covers the refactor's acceptance bar: the ``"overlap"`` backend is
frame-for-frame identical to the pre-refactor hard-wired pipeline, the
``"kalman"`` and ``"ebms"`` backends reproduce their historical bespoke
evaluation loops, and every backend's snapshot/restore round-trips exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.core.ebbi import EbbiBuilder
from repro.core.histogram_rpn import HistogramRegionProposer
from repro.core.overlap_tracker import OverlapTracker, OverlapTrackerConfig
from repro.core.roe import RegionOfExclusion
from repro.events.filters import NearestNeighbourFilter
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.trackers import (
    BackendState,
    EbmsTracker,
    KalmanFilterTracker,
    TrackerBackend,
    TrackerFrame,
    available_backends,
    create_backend,
    ensure_backend_name,
    register_backend,
)


def _moving_blocks_stream(seed: int = 0, num_frames: int = 18) -> EventStream:
    """Two 6x6 blocks crossing the view in opposite directions."""
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        t = frame_index * 66_000 + 8_000
        for x0, y0 in (
            (20 + 4 * frame_index, 60),
            (200 - 5 * frame_index, 110),
        ):
            for dy in range(6):
                for dx in range(6):
                    xs.append(x0 + dx)
                    ys.append(y0 + dy)
                    ts.append(t + int(rng.integers(0, 40_000)))
    order = np.argsort(ts, kind="stable")
    packet = make_packet(
        [xs[i] for i in order],
        [ys[i] for i in order],
        [ts[i] for i in order],
        [1] * len(xs),
    )
    return EventStream(packet, 240, 180)


def _assert_observations_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.track_id == b.track_id
        assert a.t_us == b.t_us
        assert a.box.x == pytest.approx(b.box.x)
        assert a.box.y == pytest.approx(b.box.y)
        assert a.box.width == pytest.approx(b.box.width)
        assert a.box.height == pytest.approx(b.box.height)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"overlap", "kalman", "ebms"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown tracker backend"):
            ensure_backend_name("nope")
        with pytest.raises(ValueError, match="unknown tracker backend"):
            create_backend("nope", EbbiotConfig())

    def test_config_validates_tracker_name(self):
        with pytest.raises(ValueError, match="unknown tracker backend"):
            EbbiotConfig(tracker="not-a-tracker")
        assert EbbiotConfig(tracker="kalman").tracker == "kalman"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("overlap", lambda config: None)

    def test_backend_flags(self):
        config = EbbiotConfig()
        overlap = create_backend("overlap", config)
        ebms = create_backend("ebms", config)
        assert overlap.requires_proposals and not overlap.requires_events
        assert ebms.requires_events and not ebms.requires_proposals

    def test_create_backend_passes_instances_through(self):
        config = EbbiotConfig()
        backend = create_backend("kalman", config)
        assert create_backend(backend, config) is backend

    def test_max_trackers_propagates(self):
        config = EbbiotConfig(max_trackers=3)
        assert create_backend("overlap", config).tracker.config.max_trackers == 3
        assert create_backend("kalman", config).tracker.config.max_tracks == 3
        assert create_backend("ebms", config).tracker.config.max_clusters == 3


class TestOverlapParity:
    def test_pipeline_matches_hand_wired_overlap_tracker(self):
        """Acceptance bar: tracker="overlap" == the pre-refactor pipeline."""
        stream = _moving_blocks_stream(seed=1)
        config = EbbiotConfig()

        # The pre-refactor pipeline, stage by stage, with the identical
        # parameter mapping the hard-wired constructor used.
        builder = EbbiBuilder(config.width, config.height, config.median_patch_size)
        proposer = HistogramRegionProposer(
            downsample_x=config.downsample_x,
            downsample_y=config.downsample_y,
            threshold=config.histogram_threshold,
            min_region_side_px=config.min_region_side_px,
        )
        roe = RegionOfExclusion(boxes=[])
        tracker = OverlapTracker(
            OverlapTrackerConfig(
                max_trackers=config.max_trackers,
                overlap_threshold=config.overlap_threshold,
                prediction_weight=config.prediction_weight,
                occlusion_lookahead_frames=config.occlusion_lookahead_frames,
                min_track_age_frames=config.min_track_age_frames,
                max_missed_frames=config.max_missed_frames,
            )
        )
        reference = []
        for t_start, t_end, events in stream.iter_frames(
            config.frame_duration_us, align_to_zero=True
        ):
            ebbi = builder.build(events, t_start, t_end)
            proposals = [
                p
                for p in proposer.propose(ebbi.filtered)
                if p.box.area >= config.min_proposal_area
            ]
            proposals = roe.filter_proposals(proposals)
            reference.extend(tracker.process_frame(proposals, ebbi.t_mid_us))

        unified = EbbiotPipeline(EbbiotConfig(tracker="overlap")).process_stream(stream)
        _assert_observations_equal(unified.track_history.observations, reference)
        assert unified.mean_active_trackers == pytest.approx(
            tracker.mean_active_trackers
        )


class TestKalmanParity:
    def test_pipeline_matches_bespoke_kalman_loop(self):
        """The rewritten Fig. 4 EBBI+KF path reproduces the bespoke loop."""
        stream = _moving_blocks_stream(seed=2)
        config = EbbiotConfig()

        builder = EbbiBuilder(config.width, config.height, config.median_patch_size)
        proposer = HistogramRegionProposer(
            downsample_x=config.downsample_x,
            downsample_y=config.downsample_y,
            threshold=config.histogram_threshold,
        )
        roe = RegionOfExclusion(boxes=[])
        tracker = KalmanFilterTracker()
        reference = []
        for t_start, t_end, events in stream.iter_frames(
            config.frame_duration_us, align_to_zero=True
        ):
            ebbi = builder.build(events, t_start, t_end)
            proposals = roe.filter_proposals(proposer.propose(ebbi.filtered))
            reference.extend(tracker.process_frame(proposals, ebbi.t_mid_us))

        # The bespoke loop applied no proposal-area filter.
        unified = EbbiotPipeline(
            EbbiotConfig(tracker="kalman", min_proposal_area=0.0)
        ).process_stream(stream)
        _assert_observations_equal(unified.track_history.observations, reference)


class TestEbmsParity:
    def test_pipeline_matches_bespoke_nnfilt_ebms_loop(self):
        """The unified event-driven path == NN-filt + EBMS fed frame by frame."""
        stream = _moving_blocks_stream(seed=3, num_frames=12)
        config = EbbiotConfig()

        nn_filter = NearestNeighbourFilter(config.width, config.height)
        tracker = EbmsTracker()
        reference = []
        for t_start, t_end, events in stream.iter_frames(
            config.frame_duration_us, align_to_zero=True
        ):
            filtered = nn_filter.filter(events)
            reference.extend(tracker.process_frame(filtered, (t_start + t_end) // 2))

        unified = EbbiotPipeline(EbbiotConfig(tracker="ebms")).process_stream(stream)
        _assert_observations_equal(unified.track_history.observations, reference)

    def test_rpn_skipped_for_proposal_free_backend(self):
        stream = _moving_blocks_stream(seed=4, num_frames=8)
        result = EbbiotPipeline(EbbiotConfig(tracker="ebms")).process_stream(stream)
        assert result.total_proposals() == 0
        assert result.num_frames > 0

    def test_step_without_events_raises(self):
        backend = create_backend("ebms", EbbiotConfig())
        frame = TrackerFrame(proposals=[], events=None, t_start_us=0, t_end_us=66_000)
        with pytest.raises(ValueError, match="requires per-window events"):
            backend.step(frame)


class TestSnapshotRestore:
    @pytest.mark.parametrize("backend_name", ["overlap", "kalman", "ebms"])
    def test_round_trip_resumes_identically(self, backend_name):
        """ISSUE satellite: snapshot/restore round-trips on every backend."""
        stream = _moving_blocks_stream(seed=5)
        frames = list(stream.iter_frames(66_000, align_to_zero=True))
        half = len(frames) // 2

        original = EbbiotPipeline(EbbiotConfig(tracker=backend_name))
        for i, (t_start, t_end, events) in enumerate(frames[:half]):
            original.process_frame_events(events, t_start, t_end, i)
        checkpoint = original.snapshot()
        assert isinstance(checkpoint.tracker, BackendState)
        assert checkpoint.tracker.backend == backend_name

        tail_original = [
            original.process_frame_events(events, t_start, t_end, i)
            for i, (t_start, t_end, events) in enumerate(frames[half:], start=half)
        ]
        resumed = EbbiotPipeline(EbbiotConfig(tracker=backend_name))
        resumed.restore(checkpoint)
        tail_resumed = [
            resumed.process_frame_events(events, t_start, t_end, i)
            for i, (t_start, t_end, events) in enumerate(frames[half:], start=half)
        ]
        for a, b in zip(tail_original, tail_resumed):
            _assert_observations_equal(a.tracks, b.tracks)
        assert resumed.mean_events_per_frame == pytest.approx(
            original.mean_events_per_frame
        )

    @pytest.mark.parametrize("backend_name", ["overlap", "kalman", "ebms"])
    def test_snapshot_is_isolated_from_live_state(self, backend_name):
        """Mutating the live tracker after snapshot leaves the capture intact."""
        stream = _moving_blocks_stream(seed=6, num_frames=10)
        frames = list(stream.iter_frames(66_000, align_to_zero=True))
        pipeline = EbbiotPipeline(EbbiotConfig(tracker=backend_name))
        for i, (t_start, t_end, events) in enumerate(frames[:5]):
            pipeline.process_frame_events(events, t_start, t_end, i)
        checkpoint = pipeline.snapshot()
        before = pipeline.tracker.num_active_tracks

        pipeline.tracker.reset()
        assert pipeline.tracker.num_active_tracks == 0
        pipeline.restore(checkpoint)
        assert pipeline.tracker.num_active_tracks == before

    def test_cross_backend_restore_rejected(self):
        stream = _moving_blocks_stream(seed=7, num_frames=6)
        frames = list(stream.iter_frames(66_000, align_to_zero=True))
        ebms = EbbiotPipeline(EbbiotConfig(tracker="ebms"))
        for i, (t_start, t_end, events) in enumerate(frames):
            ebms.process_frame_events(events, t_start, t_end, i)
        checkpoint = ebms.snapshot()
        kalman = EbbiotPipeline(EbbiotConfig(tracker="kalman"))
        with pytest.raises(ValueError, match="cannot restore"):
            kalman.restore(checkpoint)

    def test_snapshot_is_picklable(self):
        import pickle

        stream = _moving_blocks_stream(seed=8, num_frames=6)
        frames = list(stream.iter_frames(66_000, align_to_zero=True))
        for backend_name in available_backends():
            pipeline = EbbiotPipeline(EbbiotConfig(tracker=backend_name))
            for i, (t_start, t_end, events) in enumerate(frames):
                pipeline.process_frame_events(events, t_start, t_end, i)
            blob = pickle.dumps(pipeline.snapshot())
            restored = pickle.loads(blob)
            fresh = EbbiotPipeline(EbbiotConfig(tracker=backend_name))
            fresh.restore(restored)
            assert fresh.frames_processed == pipeline.frames_processed


class TestCustomBackendInjection:
    def test_pipeline_accepts_backend_instance(self):
        class CountingBackend(TrackerBackend):
            name = "counting"
            requires_events = False
            requires_proposals = True

            def __init__(self):
                self.steps = 0

            def step(self, frame):
                self.steps += 1
                return []

            def reset(self):
                self.steps = 0

            def snapshot(self):
                return BackendState(backend=self.name, payload=self.steps)

            def restore(self, state):
                self._check_state(state)
                self.steps = state.payload

            @property
            def num_active_tracks(self):
                return 0

            @property
            def mean_active_trackers(self):
                return 0.0

        backend = CountingBackend()
        stream = _moving_blocks_stream(seed=9, num_frames=5)
        pipeline = EbbiotPipeline(tracker=backend)
        result = pipeline.process_stream(stream)
        assert pipeline.backend_name == "counting"
        assert backend.steps == result.num_frames > 0
