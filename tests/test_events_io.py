"""Tests for event stream / recording IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.io import (
    EVENT_FORMATS,
    iter_events_csv,
    iter_events_npz,
    load_events,
    load_events_aedat2,
    load_events_csv,
    load_events_npz,
    load_events_txt,
    load_recording,
    save_events_aedat2,
    save_events_csv,
    save_events_npz,
    save_events_txt,
    save_recording,
)
from repro.events.stream import EventStream
from repro.events.types import concatenate_packets, empty_packet, make_packet


@pytest.fixture
def sample_stream() -> EventStream:
    packet = make_packet(
        [0, 10, 239, 100], [0, 20, 179, 90], [0, 1000, 2000, 3000], [1, -1, 1, -1]
    )
    return EventStream(packet, 240, 180)


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "events.npz"
        save_events_npz(path, sample_stream)
        loaded = load_events_npz(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_empty_stream_round_trip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_events_npz(path, EventStream(empty_packet(), 240, 180))
        loaded = load_events_npz(path)
        assert len(loaded) == 0

    def test_missing_keys_raises(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="missing keys"):
            load_events_npz(path)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "events.csv"
        save_events_csv(path, sample_stream)
        loaded = load_events_csv(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events["x"], sample_stream.events["x"])
        np.testing.assert_array_equal(loaded.events["t"], sample_stream.events["t"])

    def test_explicit_resolution_overrides_header(self, tmp_path, sample_stream):
        path = tmp_path / "events.csv"
        save_events_csv(path, sample_stream)
        loaded = load_events_csv(path, width=480, height=360)
        assert loaded.resolution == (480, 360)

    def test_missing_header_requires_resolution(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("x,y,t,p\n1,2,3,1\n")
        with pytest.raises(ValueError, match="resolution"):
            load_events_csv(path)

    def test_empty_csv_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_events_csv(path, EventStream(empty_packet(), 240, 180))
        loaded = load_events_csv(path)
        assert len(loaded) == 0


class TestSuffixNormalization:
    """Regression tests: NumPy appends ``.npz`` on save, so a suffix-less
    path used to save fine but fail every subsequent load."""

    def test_save_without_suffix_then_load_same_path(self, tmp_path, sample_stream):
        path = tmp_path / "events"  # no .npz
        save_events_npz(path, sample_stream)
        assert (tmp_path / "events.npz").exists()
        loaded = load_events_npz(path)  # the exact path the caller saved with
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_save_without_suffix_then_load_with_suffix(self, tmp_path, sample_stream):
        save_events_npz(tmp_path / "events", sample_stream)
        loaded = load_events_npz(tmp_path / "events.npz")
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_recording_round_trip_without_suffix(self, tmp_path, sample_stream):
        path = tmp_path / "recording"  # no .npz
        save_recording(path, sample_stream, metadata={"site": "ENG"})
        loaded = load_recording(path)
        assert loaded["metadata"]["site"] == "ENG"
        np.testing.assert_array_equal(loaded["stream"].events, sample_stream.events)

    def test_dotted_name_keeps_its_dots(self, tmp_path, sample_stream):
        path = tmp_path / "site.v2"  # suffix-like dot in the stem
        save_events_npz(path, sample_stream)
        assert (tmp_path / "site.v2.npz").exists()
        loaded = load_events_npz(path)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)


class TestCsvHeaderDetection:
    """Regression tests: the loader hard-coded ``skiprows=2``, silently
    dropping the first event of files without the resolution comment."""

    def test_headerless_csv_keeps_first_row(self, tmp_path):
        path = tmp_path / "bare.csv"
        path.write_text("5,6,100,1\n7,8,200,-1\n")
        loaded = load_events_csv(path, width=240, height=180)
        assert len(loaded) == 2
        assert int(loaded.events["x"][0]) == 5
        assert int(loaded.events["t"][0]) == 100

    def test_column_header_only_csv(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("x,y,t,p\n5,6,100,1\n7,8,200,-1\n")
        loaded = load_events_csv(path, width=240, height=180)
        assert len(loaded) == 2
        assert int(loaded.events["x"][0]) == 5

    def test_crlf_csv(self, tmp_path, sample_stream):
        path = tmp_path / "crlf.csv"
        save_events_csv(path, sample_stream)
        path.write_bytes(path.read_text().replace("\n", "\r\n").encode())
        loaded = load_events_csv(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_malformed_rows_raise_instead_of_loading_empty(self, tmp_path):
        # Regression: non-integer rows must not be consumed as an
        # ever-longer "header" that silently yields an empty stream.
        path = tmp_path / "floats.csv"
        path.write_text("5.0,6.0,100,1\n7.0,8.0,200,-1\n")
        with pytest.raises(ValueError):
            load_events_csv(path, width=240, height=180)

    def test_resolution_comment_split_across_lines(self, tmp_path):
        path = tmp_path / "split.csv"
        path.write_text("# width=240\n# height=180\nx,y,t,p\n1,2,3,1\n")
        loaded = load_events_csv(path)
        assert loaded.resolution == (240, 180)
        assert len(loaded) == 1

    def test_extra_comment_lines(self, tmp_path):
        path = tmp_path / "comments.csv"
        path.write_text(
            "# exported by some tool\n# width=240 height=180\n# note\nx,y,t,p\n1,2,3,1\n"
        )
        loaded = load_events_csv(path)
        assert loaded.resolution == (240, 180)
        assert len(loaded) == 1


class TestArchiveValidation:
    def test_unsupported_format_version(self, tmp_path, sample_stream):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            x=sample_stream.events["x"],
            y=sample_stream.events["y"],
            t=sample_stream.events["t"],
            p=sample_stream.events["p"],
            width=np.int64(240),
            height=np.int64(180),
            format_version=np.int64(99),
        )
        with pytest.raises(ValueError, match="format_version 99"):
            load_events_npz(path)

    def test_recording_missing_keys_is_value_error(self, tmp_path, sample_stream):
        # A plain event archive is NOT a recording archive: loading it as
        # one must raise a named ValueError, never a raw KeyError.
        path = tmp_path / "events.npz"
        save_events_npz(path, sample_stream)
        with pytest.raises(ValueError, match="annotations_json"):
            load_recording(path)

    def test_recording_error_names_the_file(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="bogus.npz"):
            load_recording(path)

    def test_recording_unsupported_version(self, tmp_path, sample_stream):
        path = tmp_path / "future.npz"
        save_recording(path, sample_stream)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format_version 99"):
            load_recording(path)


class TestAedat2RoundTrip:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "events.aedat"
        save_events_aedat2(path, sample_stream)
        loaded = load_events_aedat2(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_polarity_survives(self, tmp_path):
        stream = EventStream(
            make_packet([1, 2, 3], [4, 5, 6], [10, 20, 30], [1, -1, 1]), 240, 180
        )
        path = tmp_path / "p.aedat"
        save_events_aedat2(path, stream)
        np.testing.assert_array_equal(
            load_events_aedat2(path).events["p"], [1, -1, 1]
        )

    def test_empty_stream_round_trip(self, tmp_path):
        path = tmp_path / "empty.aedat"
        save_events_aedat2(path, EventStream(empty_packet(), 240, 180))
        loaded = load_events_aedat2(path)
        assert len(loaded) == 0
        assert loaded.resolution == (240, 180)

    def test_missing_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.aedat"
        path.write_bytes(b"not an aedat file")
        with pytest.raises(ValueError, match="AER-DAT2.0"):
            load_events_aedat2(path)

    def test_truncated_payload_rejected(self, tmp_path, sample_stream):
        path = tmp_path / "trunc.aedat"
        save_events_aedat2(path, sample_stream)
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(ValueError, match="truncated"):
            load_events_aedat2(path)

    def test_aps_words_are_skipped(self, tmp_path, sample_stream):
        path = tmp_path / "aps.aedat"
        save_events_aedat2(path, sample_stream)
        aps_word = np.asarray([1 << 31, 12345], dtype=">u4")  # bit 31 = non-DVS
        path.write_bytes(path.read_bytes() + aps_word.tobytes())
        loaded = load_events_aedat2(path)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_resolution_override(self, tmp_path, sample_stream):
        path = tmp_path / "events.aedat"
        save_events_aedat2(path, sample_stream)
        assert load_events_aedat2(path, width=480, height=360).resolution == (480, 360)

    def test_headers_without_resolution_default_to_davis240(self, tmp_path, sample_stream):
        path = tmp_path / "bare.aedat"
        save_events_aedat2(path, sample_stream)
        raw = path.read_bytes()
        head, _, tail = raw.partition(b"# width=240 height=180\r\n")
        path.write_bytes(head + tail)
        assert load_events_aedat2(path).resolution == (240, 180)

    def test_first_event_y_140_to_143_round_trips(self, tmp_path):
        # Regression: the address word of an event with y in [140, 143] has
        # high byte 0x23 ('#'); a naive header scan consumes the whole
        # payload as comment lines and silently returns an empty stream.
        for y in (140, 141, 142, 143):
            stream = EventStream(
                make_packet([10, 20], [y, 50], [5, 15], [1, -1]), 240, 180
            )
            path = tmp_path / f"hash-{y}.aedat"
            save_events_aedat2(path, stream)
            loaded = load_events_aedat2(path)
            np.testing.assert_array_equal(loaded.events, stream.events)

    def test_timestamps_must_fit_int32(self, tmp_path):
        # jAER decodes timestamps as signed int32; 2**31 is the first value
        # that would silently wrap negative there.
        stream = EventStream(make_packet([1], [1], [2**31], [1]), 240, 180)
        with pytest.raises(ValueError, match="int32"):
            save_events_aedat2(tmp_path / "big.aedat", stream)
        ok = EventStream(make_packet([1], [1], [2**31 - 1], [1]), 240, 180)
        save_events_aedat2(tmp_path / "ok.aedat", ok)
        assert int(load_events_aedat2(tmp_path / "ok.aedat").events["t"][0]) == 2**31 - 1

    def test_resolution_must_fit_address_map(self, tmp_path):
        stream = EventStream(empty_packet(), 2048, 180)
        with pytest.raises(ValueError, match="address map"):
            save_events_aedat2(tmp_path / "wide.aedat", stream)


class TestTxtRoundTrip:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "events.txt"
        save_events_txt(path, sample_stream)
        loaded = load_events_txt(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_events_txt(path, EventStream(empty_packet(), 240, 180))
        assert len(load_events_txt(path)) == 0

    def test_crlf_txt(self, tmp_path, sample_stream):
        path = tmp_path / "crlf.txt"
        save_events_txt(path, sample_stream)
        path.write_bytes(path.read_text().replace("\n", "\r\n").encode())
        np.testing.assert_array_equal(
            load_events_txt(path).events, sample_stream.events
        )

    def test_one_corrupt_resolution_value_keeps_the_other(self, tmp_path):
        path = tmp_path / "corrupt.txt"
        path.write_text("# width=128 height=12O\n100 1 2 1\n")  # height typo
        loaded = load_events_txt(path)
        assert loaded.resolution == (128, 180)  # width kept, height defaulted

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="4 columns"):
            load_events_txt(path)


class TestLoadEventsDispatcher:
    def test_dispatch_by_suffix(self, tmp_path, sample_stream):
        for name, fmt in EVENT_FORMATS.items():
            path = tmp_path / f"events{fmt.suffix}"
            fmt.save(path, sample_stream)
            loaded = load_events(path)
            np.testing.assert_array_equal(loaded.events, sample_stream.events, err_msg=name)

    def test_explicit_format_overrides_suffix(self, tmp_path, sample_stream):
        path = tmp_path / "events.dat"  # jAER's other aedat suffix
        save_events_aedat2(path, sample_stream)
        assert len(load_events(path)) == len(sample_stream)
        assert len(load_events(path, format="aedat2")) == len(sample_stream)

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            load_events(tmp_path / "events.xyz")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown event format"):
            load_events(tmp_path / "events.csv", format="bogus")


class TestChunkedReaders:
    def test_npz_chunks_concatenate_to_full_stream(self, tmp_path, sample_stream):
        path = tmp_path / "events.npz"
        save_events_npz(path, sample_stream)
        chunks = list(iter_events_npz(path, chunk_events=3))
        assert all(len(chunk) <= 3 for chunk in chunks)
        np.testing.assert_array_equal(
            concatenate_packets(chunks), sample_stream.events
        )

    def test_csv_chunks_concatenate_to_full_stream(self, tmp_path, sample_stream):
        path = tmp_path / "events.csv"
        save_events_csv(path, sample_stream)
        chunks = list(iter_events_csv(path, chunk_events=3))
        assert all(len(chunk) <= 3 for chunk in chunks)
        np.testing.assert_array_equal(
            concatenate_packets(chunks), sample_stream.events
        )

    def test_empty_files_yield_no_chunks(self, tmp_path):
        empty = EventStream(empty_packet(), 240, 180)
        save_events_npz(tmp_path / "e.npz", empty)
        save_events_csv(tmp_path / "e.csv", empty)
        assert list(iter_events_npz(tmp_path / "e.npz")) == []
        assert list(iter_events_csv(tmp_path / "e.csv")) == []

    def test_invalid_chunk_size_rejected(self, tmp_path, sample_stream):
        save_events_npz(tmp_path / "e.npz", sample_stream)
        with pytest.raises(ValueError, match="chunk_events"):
            list(iter_events_npz(tmp_path / "e.npz", chunk_events=0))
        with pytest.raises(ValueError, match="chunk_events"):
            list(iter_events_csv(tmp_path / "e.csv", chunk_events=-1))


class TestRecordingRoundTrip:
    def test_round_trip_with_annotations_and_metadata(self, tmp_path, sample_stream):
        path = tmp_path / "recording.npz"
        annotations = {"frames": [{"t_us": 0, "boxes": []}]}
        metadata = {"location": "ENG", "lens_mm": 12}
        save_recording(path, sample_stream, annotations, metadata)
        loaded = load_recording(path)
        assert loaded["metadata"]["location"] == "ENG"
        assert loaded["annotations"]["frames"][0]["t_us"] == 0
        assert len(loaded["stream"]) == len(sample_stream)

    def test_defaults_to_empty_dicts(self, tmp_path, sample_stream):
        path = tmp_path / "recording.npz"
        save_recording(path, sample_stream)
        loaded = load_recording(path)
        assert loaded["annotations"] == {}
        assert loaded["metadata"] == {}
