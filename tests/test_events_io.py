"""Tests for event stream / recording IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.io import (
    load_events_csv,
    load_events_npz,
    load_recording,
    save_events_csv,
    save_events_npz,
    save_recording,
)
from repro.events.stream import EventStream
from repro.events.types import empty_packet, make_packet


@pytest.fixture
def sample_stream() -> EventStream:
    packet = make_packet(
        [0, 10, 239, 100], [0, 20, 179, 90], [0, 1000, 2000, 3000], [1, -1, 1, -1]
    )
    return EventStream(packet, 240, 180)


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "events.npz"
        save_events_npz(path, sample_stream)
        loaded = load_events_npz(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events, sample_stream.events)

    def test_empty_stream_round_trip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_events_npz(path, EventStream(empty_packet(), 240, 180))
        loaded = load_events_npz(path)
        assert len(loaded) == 0

    def test_missing_keys_raises(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="missing keys"):
            load_events_npz(path)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "events.csv"
        save_events_csv(path, sample_stream)
        loaded = load_events_csv(path)
        assert loaded.resolution == (240, 180)
        np.testing.assert_array_equal(loaded.events["x"], sample_stream.events["x"])
        np.testing.assert_array_equal(loaded.events["t"], sample_stream.events["t"])

    def test_explicit_resolution_overrides_header(self, tmp_path, sample_stream):
        path = tmp_path / "events.csv"
        save_events_csv(path, sample_stream)
        loaded = load_events_csv(path, width=480, height=360)
        assert loaded.resolution == (480, 360)

    def test_missing_header_requires_resolution(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("x,y,t,p\n1,2,3,1\n")
        with pytest.raises(ValueError, match="resolution"):
            load_events_csv(path)

    def test_empty_csv_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_events_csv(path, EventStream(empty_packet(), 240, 180))
        loaded = load_events_csv(path)
        assert len(loaded) == 0


class TestRecordingRoundTrip:
    def test_round_trip_with_annotations_and_metadata(self, tmp_path, sample_stream):
        path = tmp_path / "recording.npz"
        annotations = {"frames": [{"t_us": 0, "boxes": []}]}
        metadata = {"location": "ENG", "lens_mm": 12}
        save_recording(path, sample_stream, annotations, metadata)
        loaded = load_recording(path)
        assert loaded["metadata"]["location"] == "ENG"
        assert loaded["annotations"]["frames"][0]["t_us"] == 0
        assert len(loaded["stream"]) == len(sample_stream)

    def test_defaults_to_empty_dicts(self, tmp_path, sample_stream):
        path = tmp_path / "recording.npz"
        save_recording(path, sample_stream)
        loaded = load_recording(path)
        assert loaded["annotations"] == {}
        assert loaded["metadata"] == {}
