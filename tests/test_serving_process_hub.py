"""Tests for the process-per-shard :class:`ProcessTrackingHub`.

The scheduling surface is deliberately identical to the thread hub's, so
several tests run parametrized over both flavours — in particular the
``"drop"`` backpressure contract under sustained overload and the
per-shard gauge exposition, which the CI smoke job also gates.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.obs import parse_prometheus_text, sample_value
from repro.serving.hub import HubConfig, TrackingHub
from repro.serving.process_hub import ProcessTrackingHub
from repro.serving.rebalance import RebalancePolicy

HUBS = {"thread": TrackingHub, "process": ProcessTrackingHub}


def _moving_block_stream(seed: int, num_frames: int = 10) -> EventStream:
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        x0 = 20 + 3 * frame_index
        y0 = 40 + (seed % 60)
        t = frame_index * 66_000 + 10_000
        for dy in range(6):
            for dx in range(6):
                xs.append(x0 + dx)
                ys.append(y0 + dy)
                ts.append(t + int(rng.integers(0, 40_000)))
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, 240, 180)


def _batches(stream: EventStream, batch_us: int = 22_000):
    events = stream.events
    for lo in range(0, int(events["t"][-1]) + 1, batch_us):
        i0, i1 = np.searchsorted(events["t"], [lo, lo + batch_us])
        if i1 > i0:
            yield events[i0:i1]


def _expected(stream: EventStream):
    return EbbiotPipeline(EbbiotConfig()).process_stream(stream)


class TestProcessHubParity:
    def test_multi_sensor_results_match_batch_pipeline(self):
        streams = {f"sensor-{i}": _moving_block_stream(seed=i) for i in range(6)}
        with ProcessTrackingHub(HubConfig(num_workers=3)) as hub:
            for sensor_id in streams:
                hub.register(sensor_id)
            for sensor_id, stream in streams.items():
                for batch in _batches(stream):
                    assert hub.submit(sensor_id, batch)
            results = {sid: hub.close_sensor(sid, timeout=60) for sid in streams}

        for sensor_id, stream in streams.items():
            expected = _expected(stream)
            result = results[sensor_id]
            assert result.name == sensor_id
            assert result.num_events == len(stream)
            assert result.num_frames == expected.num_frames
            assert result.num_track_observations == (
                expected.total_track_observations()
            )

    def test_pipe_transport_matches_batch_pipeline(self):
        stream = _moving_block_stream(seed=11)
        config = HubConfig(num_workers=2, transport="pipe")
        with ProcessTrackingHub(config) as hub:
            hub.register("cam")
            for batch in _batches(stream):
                assert hub.submit("cam", batch)
            result = hub.close_sensor("cam", timeout=60)
        expected = _expected(stream)
        assert result.num_frames == expected.num_frames
        assert result.num_track_observations == expected.total_track_observations()

    def test_frames_callback_delivers_all_frames_in_order(self):
        stream = _moving_block_stream(seed=1)
        received = []
        lock = threading.Lock()

        def on_frames(sensor_id, frames):
            with lock:
                received.extend(frames)

        with ProcessTrackingHub(HubConfig(num_workers=2)) as hub:
            hub.register("cam", on_frames=on_frames)
            for batch in _batches(stream):
                hub.submit("cam", batch)
            result = hub.close_sensor("cam", timeout=60)

        assert [f.frame_index for f in received] == list(range(result.num_frames))

    def test_batch_result_aggregates_closed_sensors(self):
        with ProcessTrackingHub(HubConfig(num_workers=2)) as hub:
            for i in range(3):
                hub.register(f"s{i}")
            for i in range(3):
                for batch in _batches(_moving_block_stream(seed=i)):
                    hub.submit(f"s{i}", batch)
            for i in range(3):
                hub.close_sensor(f"s{i}", timeout=60)
            batch_result = hub.batch_result()
        assert len(batch_result) == 3
        assert [r.name for r in batch_result.recordings] == ["s0", "s1", "s2"]
        assert batch_result.total_events > 0


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with ProcessTrackingHub(HubConfig(num_workers=1)) as hub:
            hub.register("cam")
            with pytest.raises(ValueError):
                hub.register("cam")

    def test_submit_to_unknown_sensor_raises(self):
        with ProcessTrackingHub(HubConfig(num_workers=1)) as hub:
            with pytest.raises(KeyError):
                hub.submit("ghost", _moving_block_stream(0).events[:5])

    def test_submit_requires_started_hub(self):
        hub = ProcessTrackingHub(HubConfig(num_workers=1))
        with pytest.raises(RuntimeError):
            hub.submit("cam", _moving_block_stream(0).events[:5])

    def test_remove_sensor_allows_id_reuse(self):
        # Exercises the submit route cache across close -> remove ->
        # re-register: the stale route must be evicted, not reused.
        stream = _moving_block_stream(seed=7)
        with ProcessTrackingHub(HubConfig(num_workers=2)) as hub:
            hub.register("cam")
            for batch in _batches(stream):
                hub.submit("cam", batch)
            first = hub.close_sensor("cam", timeout=60)
            hub.remove_sensor("cam")
            with pytest.raises(KeyError):
                hub.submit("cam", stream.events[:5])
            hub.register("cam")
            for batch in _batches(stream):
                hub.submit("cam", batch)
            result = hub.close_sensor("cam", timeout=60)
        assert result.num_frames == first.num_frames


class TestDropBackpressureUnderOverload:
    """Satellite contract: sustained overload with ``"drop"`` on BOTH hubs.

    Shed batches must be counted exactly (generator refusals == telemetry
    drops, accepted == batches received) and ``close_sensor`` must drain
    without deadlock even while the queue is saturated.
    """

    @staticmethod
    def _config(kind: str) -> HubConfig:
        if kind == "thread":
            return HubConfig(num_workers=1, queue_capacity=2, backpressure="drop")
        # The smallest legal ring holds only a few ~2.4 KiB batches, so a
        # full-speed burst overruns it just like the one-slot queue.
        return HubConfig(
            num_workers=1, backpressure="drop", ring_capacity_bytes=4096
        )

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_drop_counts_match_telemetry_and_close_does_not_deadlock(self, kind):
        stream = _moving_block_stream(seed=3, num_frames=30)
        batches = list(_batches(stream, batch_us=8_000))
        assert len(batches) >= 100
        with HUBS[kind](self._config(kind)) as hub:
            hub.register("cam")
            accepted = refused = 0
            for _ in range(3):  # sustained: repeated full-speed bursts
                for batch in batches:
                    if hub.submit("cam", batch):
                        accepted += 1
                    else:
                        refused += 1
            result = hub.close_sensor("cam", timeout=60)
            telemetry = hub.telemetry_dict()["sensors"]["cam"]
        assert refused > 0, "overload never tripped the drop policy"
        assert accepted + refused == 3 * len(batches)
        assert telemetry["dropped_batches"] == refused
        assert telemetry["batches_received"] == accepted
        assert result.num_events == telemetry["events_received"]

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_try_submit_refusals_are_not_counted_as_drops(self, kind):
        stream = _moving_block_stream(seed=5, num_frames=30)
        batches = list(_batches(stream, batch_us=8_000))
        with HUBS[kind](self._config(kind)) as hub:
            hub.register("cam")
            refused = sum(
                0 if hub.try_submit("cam", batch) else 1 for batch in batches
            )
            hub.close_sensor("cam", timeout=60)
            telemetry = hub.telemetry_dict()["sensors"]["cam"]
        assert refused > 0
        assert telemetry["dropped_batches"] == 0


class TestMigration:
    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_migration_mid_stream_preserves_output_exactly(self, kind):
        stream = _moving_block_stream(seed=9)
        batches = list(_batches(stream))
        expected = _expected(stream)
        with HUBS[kind](HubConfig(num_workers=2)) as hub:
            hub.register("cam", shard=0)
            half = len(batches) // 2
            for batch in batches[:half]:
                assert hub.submit("cam", batch)
            assert hub.migrate_sensor("cam", 1) is True
            assert hub.sensor_shards()["cam"] == 1
            for batch in batches[half:]:
                assert hub.submit("cam", batch)
            result = hub.close_sensor("cam", timeout=60)
            assert hub.migrations_performed == 1
        assert result.num_events == len(stream)
        assert result.num_frames == expected.num_frames
        assert result.num_track_observations == expected.total_track_observations()

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_migration_racing_submits_preserves_output_exactly(self, kind):
        # Regression: the shard-map flip and the two marker enqueues must
        # be atomic with respect to concurrent submits (both hubs hold the
        # affected shard locks across them, and submits re-check the map
        # under their shard's lock).  Without the interlock, a racing
        # batch can land on the source queue *behind* the migrate-out
        # marker — ingested into the abandoned session and lost from the
        # migrated stream — or on the target queue ahead of the barrier.
        stream = _moving_block_stream(seed=13, num_frames=40)
        batches = list(_batches(stream, batch_us=8_000))
        expected = _expected(stream)
        with HUBS[kind](HubConfig(num_workers=2)) as hub:
            hub.register("cam", shard=0)
            errors = []

            def produce():
                try:
                    for batch in batches:
                        assert hub.submit("cam", batch)
                        time.sleep(0.001)  # leave room for migrations to land
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            producer = threading.Thread(target=produce)
            producer.start()
            bounces, target = 0, 1
            while producer.is_alive():
                if hub.migrate_sensor("cam", target, timeout=60.0):
                    bounces += 1
                target = 1 - target
            producer.join()
            result = hub.close_sensor("cam", timeout=60)
        assert not errors
        assert bounces >= 1, "producer finished before any migration landed"
        assert result.num_events == len(stream)
        assert result.num_frames == expected.num_frames
        assert result.num_track_observations == expected.total_track_observations()

    def test_migrate_to_same_shard_is_a_no_op(self):
        with ProcessTrackingHub(HubConfig(num_workers=2)) as hub:
            hub.register("cam", shard=1)
            assert hub.migrate_sensor("cam", 1) is False
            assert hub.migrations_performed == 0

    def test_migrate_unknown_sensor_raises(self):
        with ProcessTrackingHub(HubConfig(num_workers=2)) as hub:
            with pytest.raises(KeyError):
                hub.migrate_sensor("ghost", 1)
            with pytest.raises(ValueError):
                hub.register("cam", shard=7)


class TestRebalanceThread:
    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_rebalance_policy_runs_off_the_submit_path(self, kind):
        # A hair-trigger policy during live ingest: rebalancer-initiated
        # migrations must stay invisible in the output, and the evaluation
        # happens on the hub's own rebalancer thread (submits only set a
        # wake event), which stop() retires cleanly.
        policy = RebalancePolicy(imbalance_ratio=1.0, min_queue_delta=0)
        config = HubConfig(num_workers=2, rebalance=policy, rebalance_check_every=4)
        stream = _moving_block_stream(seed=17, num_frames=20)
        expected = _expected(stream)
        hub = HUBS[kind](config)
        with hub:
            assert hub._rebalance_thread is not None
            # Two sensors on one shard give the planner a movable candidate.
            hub.register("cam", shard=0)
            hub.register("decoy", shard=0)
            for batch in _batches(stream):
                assert hub.submit("cam", batch)
            result = hub.close_sensor("cam", timeout=60)
            hub.close_sensor("decoy", timeout=60)
        assert hub._rebalance_thread is None
        assert result.num_events == len(stream)
        assert result.num_frames == expected.num_frames
        assert result.num_track_observations == expected.total_track_observations()


class TestShardGauges:
    """Satellite contract: per-shard load gauges in the exposition."""

    @pytest.mark.parametrize("kind", sorted(HUBS))
    def test_per_shard_gauges_exposed_via_prometheus(self, kind):
        with HUBS[kind](HubConfig(num_workers=2)) as hub:
            hub.register("cam-a", shard=0)
            hub.register("cam-b", shard=0)
            hub.register("cam-c", shard=1)
            for batch in _batches(_moving_block_stream(seed=2)):
                hub.submit("cam-a", batch)
            hub.close_sensor("cam-a", timeout=60)
            samples = parse_prometheus_text(hub.metrics_text())

        assert sample_value(samples, "repro_shard_sensors", shard="0") == 2.0
        assert sample_value(samples, "repro_shard_sensors", shard="1") == 1.0
        for shard in ("0", "1"):
            depth = sample_value(samples, "repro_shard_queue_depth", shard=shard)
            busy = sample_value(samples, "repro_shard_busy_fraction", shard=shard)
            assert depth is not None and depth >= 0.0
            assert busy is not None and 0.0 <= busy <= 1.0
        # The per-sensor queue-depth gauge is stride-refreshed but the
        # first accepted batch always publishes one.
        assert (
            sample_value(samples, "repro_sensor_queue_depth", sensor="cam-a")
            is not None
        )

    def test_process_hub_merges_worker_counters(self):
        stream = _moving_block_stream(seed=4)
        with ProcessTrackingHub(HubConfig(num_workers=2)) as hub:
            hub.register("cam")
            for batch in _batches(stream):
                hub.submit("cam", batch)
            hub.close_sensor("cam", timeout=60)
            samples = parse_prometheus_text(hub.metrics_text())
        # Batches are counted parent-side, frames worker-side; both must
        # appear in one merged exposition.
        received = sample_value(
            samples, "repro_sensor_events_received_total", sensor="cam"
        )
        frames = sample_value(
            samples, "repro_sensor_frames_emitted_total", sensor="cam"
        )
        assert received == float(len(stream))
        assert frames and frames > 0.0
