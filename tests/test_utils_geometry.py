"""Tests for bounding-box geometry, including property-based invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.geometry import (
    BoundingBox,
    boxes_intersection_area,
    boxes_iou,
    boxes_union_area,
    clip_box,
    merge_boxes,
)


def finite_boxes():
    """Hypothesis strategy for well-formed boxes in a 1000x1000 canvas."""
    coordinate = st.floats(min_value=-500, max_value=500, allow_nan=False)
    extent = st.floats(min_value=0.0, max_value=500, allow_nan=False)
    return st.builds(BoundingBox, coordinate, coordinate, extent, extent)


class TestBoundingBoxBasics:
    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, -1, 5)

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 5, -1)

    def test_area_and_edges(self):
        box = BoundingBox(2, 3, 10, 20)
        assert box.area == 200
        assert box.x2 == 12
        assert box.y2 == 23
        assert box.center == (7, 13)

    def test_from_corners_any_order(self):
        box = BoundingBox.from_corners(10, 20, 2, 3)
        assert box.x == 2 and box.y == 3
        assert box.width == 8 and box.height == 17

    def test_from_center_round_trip(self):
        box = BoundingBox.from_center(50, 60, 10, 20)
        assert box.center == (50, 60)
        assert box.width == 10 and box.height == 20

    def test_from_points(self):
        box = BoundingBox.from_points([1, 5, 3], [2, 8, 4])
        assert box.corners == (1, 2, 5, 8)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([], [])

    def test_contains_point(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains_point(5, 5)
        assert box.contains_point(0, 0)
        assert not box.contains_point(11, 5)

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 3, 3)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_translated_and_scaled(self):
        box = BoundingBox(1, 2, 3, 4)
        moved = box.translated(10, 20)
        assert moved.as_tuple() == (11, 22, 3, 4)
        scaled = box.scaled(2)
        assert scaled.as_tuple() == (2, 4, 6, 8)
        scaled_xy = box.scaled(2, 3)
        assert scaled_xy.as_tuple() == (2, 6, 6, 12)

    def test_expanded_and_shrunk(self):
        box = BoundingBox(10, 10, 10, 10)
        grown = box.expanded(2)
        assert grown.width == 14 and grown.height == 14
        assert grown.center == box.center
        shrunk = box.expanded(-10)
        assert shrunk.width == 0 and shrunk.height == 0

    def test_center_distance(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(3, 4, 2, 2)
        assert a.center_distance(b) == pytest.approx(5.0)


class TestOverlapOperations:
    def test_disjoint_boxes(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(10, 10, 5, 5)
        assert boxes_intersection_area(a, b) == 0
        assert boxes_iou(a, b) == 0
        assert a.intersection(b) is None

    def test_identical_boxes(self):
        a = BoundingBox(0, 0, 5, 5)
        assert boxes_iou(a, a) == pytest.approx(1.0)
        assert boxes_union_area(a, a) == pytest.approx(25.0)

    def test_half_overlap(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 10, 10)
        assert boxes_intersection_area(a, b) == pytest.approx(50.0)
        assert boxes_iou(a, b) == pytest.approx(50.0 / 150.0)

    def test_overlap_fraction_asymmetric(self):
        small = BoundingBox(0, 0, 2, 2)
        big = BoundingBox(0, 0, 10, 10)
        assert small.overlap_fraction(big) == pytest.approx(1.0)
        assert big.overlap_fraction(small) == pytest.approx(4.0 / 100.0)

    def test_touching_boxes_do_not_intersect(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(5, 0, 5, 5)
        assert boxes_intersection_area(a, b) == 0

    def test_zero_area_iou(self):
        a = BoundingBox(0, 0, 0, 0)
        assert boxes_iou(a, a) == 0.0


class TestClipAndMerge:
    def test_clip_inside(self):
        box = BoundingBox(10, 10, 20, 20)
        assert clip_box(box, 240, 180) == box

    def test_clip_partially_outside(self):
        box = BoundingBox(-5, -5, 20, 20)
        clipped = clip_box(box, 240, 180)
        assert clipped.as_tuple() == (0, 0, 15, 15)

    def test_clip_fully_outside(self):
        assert clip_box(BoundingBox(300, 300, 10, 10), 240, 180) is None

    def test_merge_boxes(self):
        merged = merge_boxes([BoundingBox(0, 0, 2, 2), BoundingBox(5, 5, 2, 2)])
        assert merged.corners == (0, 0, 7, 7)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_boxes([])


class TestGeometryProperties:
    @given(finite_boxes(), finite_boxes())
    def test_iou_symmetric_and_bounded(self, a, b):
        iou_ab = boxes_iou(a, b)
        iou_ba = boxes_iou(b, a)
        assert iou_ab == pytest.approx(iou_ba)
        assert 0.0 <= iou_ab <= 1.0 + 1e-9

    @given(finite_boxes(), finite_boxes())
    def test_intersection_not_larger_than_either_box(self, a, b):
        overlap = boxes_intersection_area(a, b)
        assert overlap <= a.area + 1e-6
        assert overlap <= b.area + 1e-6

    @given(finite_boxes(), finite_boxes())
    def test_union_at_least_max_area(self, a, b):
        union = boxes_union_area(a, b)
        assert union >= max(a.area, b.area) - 1e-6

    @given(finite_boxes())
    def test_self_iou_is_one_for_positive_area(self, box):
        if box.area > 1e-9:
            assert boxes_iou(box, box) == pytest.approx(1.0)

    @given(finite_boxes(), st.floats(-100, 100), st.floats(-100, 100))
    def test_translation_preserves_area_and_iou_with_itself(self, box, dx, dy):
        moved = box.translated(dx, dy)
        assert moved.area == pytest.approx(box.area)

    @given(st.lists(finite_boxes(), min_size=1, max_size=6))
    def test_merge_contains_all_inputs(self, boxes):
        merged = merge_boxes(boxes)
        for box in boxes:
            assert merged.x <= box.x + 1e-9
            assert merged.y <= box.y + 1e-9
            assert merged.x2 >= box.x2 - 1e-9
            assert merged.y2 >= box.y2 - 1e-9
