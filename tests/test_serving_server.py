"""End-to-end tests of the JSONL TCP server, client and serving CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.serving import (
    HubConfig,
    ProtocolError,
    SensorClient,
    TrackingServer,
    decode_message,
    encode_message,
    stream_recording,
)
from repro.serving.protocol import (
    events_message,
    hello_message,
    packet_from_events_message,
)


def _moving_block_stream(seed: int, num_frames: int = 10) -> EventStream:
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(num_frames):
        x0 = 20 + 3 * frame_index
        t = frame_index * 66_000 + 10_000
        for dy in range(6):
            for dx in range(6):
                xs.append(x0 + dx)
                ys.append(70 + dy)
                ts.append(t + int(rng.integers(0, 40_000)))
    packet = make_packet(xs, ys, ts, [1] * len(xs))
    return EventStream(packet, 240, 180)


class TestProtocol:
    def test_message_round_trip(self):
        message = {"type": "hello", "sensor_id": "a"}
        assert decode_message(encode_message(message)) == message

    def test_events_round_trip(self):
        packet = _moving_block_stream(0).events[:100]
        decoded = packet_from_events_message(events_message(packet))
        assert np.array_equal(decoded, packet)

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode_message(b"\n")

    def test_events_message_requires_fields(self):
        with pytest.raises(ProtocolError):
            packet_from_events_message({"type": "events", "x": [1]})

    def test_hello_message_shape(self):
        message = hello_message("cam", 240, 180)
        assert message["sensor_id"] == "cam"
        assert message["version"] >= 1


class TestTrackingServer:
    def test_single_sensor_round_trip_matches_batch(self):
        stream = _moving_block_stream(seed=1)
        expected = EbbiotPipeline(EbbiotConfig()).process_stream(stream)
        with TrackingServer() as server:
            host, port = server.address
            frames, summary = stream_recording(host, port, "cam", stream)
        assert summary["name"] == "cam"
        assert summary["num_events"] == len(stream)
        assert summary["num_frames"] == expected.num_frames
        assert len(frames) == expected.num_frames
        # Track observations on the wire match the batch pipeline's.
        wire_tracks = [track for frame in frames for track in frame["tracks"]]
        assert len(wire_tracks) == expected.total_track_observations()
        for wire, obs in zip(wire_tracks, expected.track_history.observations):
            assert wire["track_id"] == obs.track_id
            assert wire["x"] == pytest.approx(obs.box.x)

    def test_eight_concurrent_sensors(self):
        """The ISSUE acceptance criterion: >= 8 concurrent live sensors."""
        from concurrent.futures import ThreadPoolExecutor

        streams = {f"cam-{i}": _moving_block_stream(seed=i) for i in range(8)}
        with TrackingServer(hub_config=HubConfig(num_workers=4)) as server:
            host, port = server.address
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = {
                    sensor_id: pool.submit(
                        stream_recording, host, port, sensor_id, stream
                    )
                    for sensor_id, stream in streams.items()
                }
                outcomes = {sid: f.result(timeout=60) for sid, f in futures.items()}
            telemetry = server.hub.telemetry.to_dict()

        assert telemetry["totals"]["num_sensors"] == 8
        for sensor_id, stream in streams.items():
            frames, summary = outcomes[sensor_id]
            assert summary["name"] == sensor_id
            assert summary["num_events"] == len(stream)
            assert len(frames) == summary["num_frames"] > 0
            assert sum(len(f["tracks"]) for f in frames) > 0

    def test_paced_replay_respects_speed_factor(self):
        """``speed=N`` releases batches on the recording's own clock / N."""
        import time

        stream = _moving_block_stream(seed=4, num_frames=8)  # ~0.5 s of stream time
        span_s = (stream.t_end + 1) * 1e-6
        with TrackingServer() as server:
            host, port = server.address
            started = time.monotonic()
            frames, summary = stream_recording(
                host, port, "fast", stream, speed=4.0
            )
            paced_s = time.monotonic() - started
        assert summary["num_events"] == len(stream)
        assert len(frames) == summary["num_frames"] > 0
        # The replay may not finish faster than stream time / speed (minus
        # one batch of slack for the final window's early release).
        assert paced_s >= span_s / 4.0 - 0.05

    def test_paced_replay_output_matches_unpaced(self):
        stream = _moving_block_stream(seed=5, num_frames=4)
        with TrackingServer() as server:
            host, port = server.address
            paced_frames, paced = stream_recording(
                host, port, "paced", stream, speed=50.0
            )
            plain_frames, plain = stream_recording(
                host, port, "plain", stream
            )
        assert paced["num_frames"] == plain["num_frames"]
        assert [f["tracks"] for f in paced_frames] == [
            f["tracks"] for f in plain_frames
        ]

    def test_paced_replay_ignores_epoch_offset(self):
        """Pacing is relative to the first event: a recording whose
        timestamps start an hour into sensor uptime must not stall."""
        import time

        from repro.events.types import make_packet

        base = _moving_block_stream(seed=7, num_frames=3)
        # Enough to separate fixed from broken: absolute-time pacing would
        # sleep offset/speed = 7.5 s; kept moderate because the server
        # still frames the (empty) epoch gap on the align-to-zero grid.
        offset_us = 60_000_000
        shifted = EventStream(
            make_packet(
                base.events["x"],
                base.events["y"],
                base.events["t"] + offset_us,
                base.events["p"],
            ),
            240,
            180,
        )
        with TrackingServer() as server:
            host, port = server.address
            started = time.monotonic()
            frames, summary = stream_recording(
                host, port, "late-epoch", shifted, speed=8.0
            )
            elapsed = time.monotonic() - started
        assert summary["num_events"] == len(shifted)
        # Framing follows the batch path's align-to-zero grid, so the epoch
        # gap yields empty windows (shed-able under backpressure) — but
        # frames must flow and none of the real events may be lost.
        assert 0 < len(frames) <= summary["num_frames"]
        # Absolute-time pacing would sleep offset/speed = 7.5 s here.
        assert elapsed < 4.0

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError, match="speed must be positive"):
            stream_recording("localhost", 1, "x", _moving_block_stream(6), speed=0.0)

    def test_realtime_flag_paces_at_sensor_speed(self):
        import time

        stream = _moving_block_stream(seed=8, num_frames=3)  # ~0.2 s span
        span_s = (stream.t_end + 1) * 1e-6
        with TrackingServer() as server:
            host, port = server.address
            started = time.monotonic()
            _, summary = stream_recording(host, port, "rt", stream, realtime=True)
            elapsed = time.monotonic() - started
        assert summary["num_events"] == len(stream)
        # realtime=True must behave as speed=1.0, not full-speed replay.
        assert elapsed >= span_s - 0.05

    def test_duplicate_sensor_id_rejected(self):
        stream = _moving_block_stream(seed=2)
        with TrackingServer() as server:
            host, port = server.address
            with SensorClient(host, port, "cam") as first:
                first.send_events(stream.events[:100])
                with pytest.raises((ProtocolError, ConnectionError)):
                    SensorClient(host, port, "cam")
                first.finish()

    def test_stats_request(self):
        stream = _moving_block_stream(seed=3)
        with TrackingServer() as server:
            host, port = server.address
            with SensorClient(host, port, "cam") as client:
                client.send_events(stream.events)
                telemetry = client.request_stats()
                assert "cam" in telemetry["sensors"]
                client.finish()

    def test_events_before_hello_rejected(self):
        import socket

        with TrackingServer() as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(encode_message({"type": "events", "x": [], "y": [], "t": [], "p": []}))
                reply = decode_message(raw.makefile("rb").readline())
                assert reply["type"] == "error"
                assert "hello" in reply["message"]

    def test_finish_after_hub_side_removal_replies_error(self):
        with TrackingServer() as server:
            host, port = server.address
            with SensorClient(host, port, "cam") as client:
                # The hub forgets the sensor while the client still believes
                # it is live; the stray finish must get an error reply, not
                # a silently dropped connection.
                server.hub.close_sensor("cam", timeout=60.0)
                server.hub.remove_sensor("cam")
                with pytest.raises(ProtocolError, match="not registered"):
                    client.finish()
                assert "repro_" in client.request_metrics()

    def test_out_of_bounds_events_reported_as_error(self):
        with TrackingServer() as server:
            host, port = server.address
            client = SensorClient(host, port, "cam", width=240, height=180)
            bad = make_packet([1000], [10], [5_000], [1])
            client.send_events(bad)
            with pytest.raises(ProtocolError):
                client.request_stats()  # the error reply arrives first
            client.close()


class TestServingCli:
    def test_demo_runs_end_to_end(self, tmp_path, capsys):
        from repro.serving.__main__ import main

        json_path = tmp_path / "fleet.json"
        telemetry_path = tmp_path / "telemetry.json"
        exit_code = main(
            [
                "--sensors",
                "2",
                "--duration",
                "1",
                "--json",
                str(json_path),
                "--telemetry-json",
                str(telemetry_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "fleet:" in captured.out
        payload = json.loads(json_path.read_text())
        assert payload["fleet"]["num_recordings"] == 2
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["totals"]["num_sensors"] == 2
        assert telemetry["totals"]["frames_emitted"] > 0

    def test_cli_rejects_bad_arguments(self, capsys):
        from repro.serving.__main__ import main

        assert main(["--sensors", "0"]) == 2
        assert main(["--duration", "0"]) == 2
        assert main(["--workers", "0"]) == 2


class TestNonDefaultResolution:
    def test_hello_resolution_configures_pipeline(self):
        """A DAVIS346-like sensor must get frames, not silent drops."""
        rng = np.random.default_rng(0)
        xs, ys, ts = [], [], []
        for frame_index in range(8):
            x0 = 280 + 3 * frame_index  # beyond 240: needs the wide config
            t = frame_index * 66_000 + 10_000
            for dy in range(6):
                for dx in range(6):
                    xs.append(x0 + dx)
                    ys.append(200 + dy)  # beyond 180 too
                    ts.append(t + int(rng.integers(0, 40_000)))
        stream = EventStream(make_packet(xs, ys, ts, [1] * len(xs)), 346, 260)

        with TrackingServer() as server:
            host, port = server.address
            frames, summary = stream_recording(host, port, "davis346", stream)
        assert summary["num_events"] == len(stream)
        assert summary["num_frames"] == len(frames) > 0
        assert sum(len(f["tracks"]) for f in frames) > 0

    def test_disconnect_without_finish_frees_sensor_id(self):
        stream = _moving_block_stream(seed=9)
        with TrackingServer() as server:
            host, port = server.address
            client = SensorClient(host, port, "cam")
            client.send_events(stream.events)
            client.close()  # abrupt disconnect, no finish
            # Teardown flushes and deregisters; the id becomes reusable.
            import time

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    frames, summary = stream_recording(host, port, "cam", stream)
                    break
                except (ProtocolError, ConnectionError):
                    time.sleep(0.1)
            else:
                raise AssertionError("sensor id was never freed after disconnect")
            assert summary["num_frames"] > 0


class TestBackendSelection:
    def test_hello_tracker_selects_backend(self):
        """A sensor requesting "kalman" gets the EBBI+KF pipeline end to end."""
        stream = _moving_block_stream(seed=11)
        expected = EbbiotPipeline(EbbiotConfig(tracker="kalman")).process_stream(stream)
        with TrackingServer() as server:
            host, port = server.address
            with SensorClient(host, port, "cam", tracker="kalman") as client:
                assert client.welcome["tracker"] == "kalman"
                client.send_events(stream.events)
                summary = client.finish()
            telemetry = server.hub.telemetry.to_dict()
        assert summary["tracker"] == "kalman"
        assert summary["num_frames"] == expected.num_frames
        assert summary["num_track_observations"] == expected.total_track_observations()
        assert telemetry["sensors"]["cam"]["tracker"] == "kalman"
        assert telemetry["totals"]["sensors_by_tracker"] == {"kalman": 1}

    def test_hello_without_tracker_uses_server_default(self):
        stream = _moving_block_stream(seed=12)
        hub_config = HubConfig(pipeline_config=EbbiotConfig(tracker="ebms"))
        with TrackingServer(hub_config=hub_config) as server:
            host, port = server.address
            with SensorClient(host, port, "cam") as client:
                assert client.welcome["tracker"] == "ebms"
                client.send_events(stream.events)
                summary = client.finish()
        assert summary["tracker"] == "ebms"

    def test_hello_unknown_tracker_rejected(self):
        with TrackingServer() as server:
            host, port = server.address
            with pytest.raises((ProtocolError, ConnectionError, TimeoutError)):
                SensorClient(host, port, "cam", tracker="made-up")

    def test_mixed_backend_demo_cli(self, tmp_path, capsys):
        from repro.serving.__main__ import main

        json_path = tmp_path / "fleet.json"
        telemetry_path = tmp_path / "telemetry.json"
        exit_code = main(
            [
                "--sensors",
                "2",
                "--duration",
                "1",
                "--tracker",
                "overlap,kalman",
                # --output is the runtime-CLI-parity alias for --json.
                "--output",
                str(json_path),
                "--telemetry-json",
                str(telemetry_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert sorted(payload["fleet"]["trackers"]) == ["kalman", "overlap"]
        assert set(payload["by_tracker"]) == {"kalman", "overlap"}
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["totals"]["sensors_by_tracker"] == {"overlap": 1, "kalman": 1}

    def test_cli_rejects_unknown_tracker(self, capsys):
        from repro.serving.__main__ import main

        assert main(["--tracker", "made-up"]) == 2
        assert "unknown tracker backend" in capsys.readouterr().err
