"""Tests for the event-based mean-shift cluster tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.types import make_packet
from repro.trackers.ebms import EbmsConfig, EbmsTracker


def blob_events(cx, cy, count, t_start, t_end, rng, spread=6):
    """Events clustered around a centre — a compact moving object."""
    x = np.clip(rng.normal(cx, spread, count), 0, 239).astype(int)
    y = np.clip(rng.normal(cy, spread, count), 0, 179).astype(int)
    t = np.sort(rng.integers(t_start, t_end, count))
    return make_packet(x, y, t, np.ones(count, dtype=int))


class TestClusterFormation:
    def test_dense_blob_forms_visible_cluster(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=30))
        tracker.process_events(blob_events(100, 90, 200, 0, 66_000, rng))
        assert tracker.num_active_tracks >= 1
        assert tracker.events_processed == 200

    def test_sparse_events_stay_invisible(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=50))
        events = make_packet([10, 200, 100], [10, 150, 90], [0, 10, 20], [1, 1, 1])
        tracker.process_events(events)
        assert tracker.num_active_tracks == 0
        assert tracker.num_clusters >= 1

    def test_cluster_centre_near_blob_centre(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=30))
        observations = tracker.process_frame(blob_events(120, 80, 300, 0, 66_000, rng), 33_000)
        assert len(observations) >= 1
        cx, cy = observations[0].box.center
        assert cx == pytest.approx(120, abs=15)
        assert cy == pytest.approx(80, abs=15)

    def test_max_clusters_respected(self, rng):
        tracker = EbmsTracker(EbmsConfig(max_clusters=2, cluster_radius_px=5))
        packets = [
            blob_events(30, 30, 50, 0, 10_000, rng),
            blob_events(120, 90, 50, 10_000, 20_000, rng),
            blob_events(200, 150, 50, 20_000, 30_000, rng),
        ]
        merged = np.concatenate(packets)
        merged.sort(order="t")
        tracker.process_events(merged)
        assert tracker.num_clusters <= 2


class TestTrackingBehaviour:
    def test_cluster_follows_moving_blob(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=30))
        centres = []
        for frame in range(10):
            cx = 40 + 8 * frame
            events = blob_events(cx, 90, 200, frame * 66_000, (frame + 1) * 66_000, rng)
            observations = tracker.process_frame(events, frame * 66_000 + 33_000)
            if observations:
                centres.append(observations[0].box.center[0])
        assert len(centres) >= 5
        assert centres[-1] > centres[0] + 30

    def test_velocity_estimated_from_history(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=30))
        observation = None
        for frame in range(10):
            cx = 40 + 8 * frame
            events = blob_events(cx, 90, 200, frame * 66_000, (frame + 1) * 66_000, rng)
            observations = tracker.process_frame(events, frame * 66_000 + 33_000)
            if observations:
                observation = observations[0]
        assert observation is not None
        # ~8 px per 66 ms frame = ~120 px/s; the estimate is noisy but positive
        # and of the right order.
        assert observation.velocity[0] > 30

    def test_stale_cluster_decays(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=30, decay_time_us=100_000))
        tracker.process_frame(blob_events(100, 90, 200, 0, 66_000, rng), 33_000)
        assert tracker.num_active_tracks >= 1
        # Several empty frames later the cluster is gone.
        for frame in range(1, 5):
            tracker.process_frame(make_packet([], [], [], []), frame * 66_000 + 33_000)
        assert tracker.num_active_tracks == 0

    def test_two_blobs_merge_when_close(self, rng):
        tracker = EbmsTracker(
            EbmsConfig(support_threshold_events=20, merge_distance_px=20, cluster_radius_px=15)
        )
        left = blob_events(80, 90, 150, 0, 33_000, rng, spread=4)
        right = blob_events(95, 90, 150, 33_000, 66_000, rng, spread=4)
        merged = np.concatenate([left, right])
        merged.sort(order="t")
        tracker.process_events(merged)
        assert tracker.merges_performed >= 1

    def test_mean_visible_clusters_statistic(self, rng):
        tracker = EbmsTracker(EbmsConfig(support_threshold_events=30))
        for frame in range(4):
            tracker.process_frame(
                blob_events(100, 90, 200, frame * 66_000, (frame + 1) * 66_000, rng),
                frame * 66_000 + 33_000,
            )
        assert 0 < tracker.mean_visible_clusters <= tracker.config.max_clusters

    def test_reset(self, rng):
        tracker = EbmsTracker()
        tracker.process_events(blob_events(100, 90, 100, 0, 66_000, rng))
        tracker.reset()
        assert tracker.num_clusters == 0
        assert tracker.events_processed == 0


class TestConfigValidation:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            EbmsConfig(max_clusters=0)
        with pytest.raises(ValueError):
            EbmsConfig(cluster_radius_px=0)
        with pytest.raises(ValueError):
            EbmsConfig(mixing_factor=0)
        with pytest.raises(ValueError):
            EbmsConfig(support_threshold_events=0)
        with pytest.raises(ValueError):
            EbmsConfig(decay_time_us=0)
        with pytest.raises(ValueError):
            EbmsConfig(history_length=1)
