"""Tests for the shared-memory/pipe event transport rings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.types import EVENT_DTYPE, make_packet
from repro.serving.transport import (
    KIND_CLOSE,
    KIND_EVENTS,
    KIND_REGISTER,
    PipeRing,
    Record,
    RingFull,
    ShmRing,
    make_ring,
)


def _payload(num_events: int, seed: int = 0) -> bytes:
    rng = np.random.default_rng(seed)
    packet = make_packet(
        rng.integers(0, 240, num_events),
        rng.integers(0, 180, num_events),
        np.sort(rng.integers(0, 1_000_000, num_events)),
        rng.choice([-1, 1], num_events),
    )
    return packet.tobytes()


@pytest.fixture(params=["shm", "pipe"])
def ring(request):
    ring = ShmRing(capacity_bytes=4096) if request.param == "shm" else PipeRing()
    yield ring
    ring.close(unlink=True)


class TestRingRoundTrip:
    def test_records_round_trip_in_order(self, ring):
        payloads = [_payload(17, seed=i) for i in range(5)]
        for index, payload in enumerate(payloads):
            assert ring.try_put(KIND_EVENTS, index, payload)
        assert ring.depth() == 5
        records = ring.get_available()
        assert ring.depth() == 0
        assert [r.sensor_idx for r in records] == list(range(5))
        for record, payload in zip(records, payloads):
            assert record.kind == KIND_EVENTS
            assert record.payload == payload
            decoded = np.frombuffer(record.payload, dtype=EVENT_DTYPE)
            assert decoded.tobytes() == payload

    def test_control_records_carry_empty_payloads(self, ring):
        ring.try_put(KIND_REGISTER, 3, b"")
        ring.try_put(KIND_CLOSE, 3, b"")
        records = ring.get_available()
        assert [(r.kind, r.sensor_idx, r.payload) for r in records] == [
            (KIND_REGISTER, 3, b""),
            (KIND_CLOSE, 3, b""),
        ]

    def test_enqueued_at_preserved(self, ring):
        ring.try_put(KIND_EVENTS, 0, b"x" * 16, enqueued_at=123.5)
        (record,) = ring.get_available()
        assert record.enqueued_at == 123.5

    def test_max_records_bounds_one_drain(self, ring):
        for index in range(10):
            ring.try_put(KIND_EVENTS, index, b"ab")
        first = ring.get_available(max_records=4)
        assert [r.sensor_idx for r in first] == [0, 1, 2, 3]
        rest = ring.get_available()
        assert [r.sensor_idx for r in rest] == [4, 5, 6, 7, 8, 9]

    def test_busy_accounting(self, ring):
        ring.add_busy(0.25)
        ring.add_busy(0.5)
        assert ring.busy_seconds() == pytest.approx(0.75, abs=1e-6)


class TestShmRingEdges:
    def test_wraparound_preserves_payload_bytes(self):
        # Force many wraps: records of ~1/3 capacity cycled hundreds of
        # times, interleaving producer cursor-cache hits and refreshes.
        ring = ShmRing(capacity_bytes=4096)
        try:
            for round_index in range(300):
                payload = bytes([round_index % 256]) * (1100 + round_index % 7)
                assert ring.try_put(KIND_EVENTS, round_index % 17, payload)
                (record,) = ring.get_available()
                assert record.payload == payload
                assert record.sensor_idx == round_index % 17
        finally:
            ring.close(unlink=True)

    def test_try_put_refuses_when_full_then_recovers(self):
        ring = ShmRing(capacity_bytes=4096)
        try:
            payload = b"z" * 1000
            accepted = 0
            while ring.try_put(KIND_EVENTS, 0, payload):
                accepted += 1
            assert accepted >= 3  # the ring held several records
            assert ring.depth() == accepted
            # Drain, then the producer (with its stale cached head) must
            # observe the freed space and accept again.
            assert len(ring.get_available()) == accepted
            assert ring.try_put(KIND_EVENTS, 0, payload)
        finally:
            ring.close(unlink=True)

    def test_put_raises_ring_full_on_timeout(self):
        ring = ShmRing(capacity_bytes=4096)
        try:
            while ring.try_put(KIND_EVENTS, 0, b"z" * 1000):
                pass
            with pytest.raises(RingFull):
                ring.put(KIND_EVENTS, 0, b"z" * 1000, timeout=0.05)
        finally:
            ring.close(unlink=True)

    def test_oversized_record_rejected_outright(self):
        ring = ShmRing(capacity_bytes=4096)
        try:
            with pytest.raises(ValueError):
                ring.try_put(KIND_EVENTS, 0, b"z" * 5000)
        finally:
            ring.close(unlink=True)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            ShmRing(capacity_bytes=128)

    def test_close_is_idempotent(self):
        ring = ShmRing(capacity_bytes=4096)
        ring.close(unlink=True)
        ring.close(unlink=True)


class TestPipeRingBackpressure:
    def test_try_put_refuses_at_capacity_instead_of_blocking(self):
        ring = PipeRing(capacity_bytes=4096)
        try:
            payload = b"z" * 1000
            accepted = 0
            while ring.try_put(KIND_EVENTS, 0, payload):
                accepted += 1
                assert accepted < 64, "try_put never refused"
            assert accepted >= 3  # several records fit under the cap
            assert ring.depth() == accepted
            # Drain, then the freed budget must admit records again.
            assert len(ring.get_available()) == accepted
            assert ring.try_put(KIND_EVENTS, 0, payload)
        finally:
            ring.close()

    def test_put_raises_ring_full_on_timeout(self):
        ring = PipeRing(capacity_bytes=4096)
        try:
            while ring.try_put(KIND_EVENTS, 0, b"z" * 1000):
                pass
            with pytest.raises(RingFull):
                ring.put(KIND_EVENTS, 0, b"z" * 1000, timeout=0.05)
        finally:
            ring.close()

    def test_oversized_record_passes_an_idle_ring(self):
        # Unlike ShmRing, an oversized record must not wedge forever: it is
        # admitted when nothing is in flight, and refused only while the
        # ring is occupied.
        ring = PipeRing(capacity_bytes=512)
        try:
            big = b"z" * 1000
            assert ring.try_put(KIND_EVENTS, 0, big)
            assert not ring.try_put(KIND_EVENTS, 0, big)
            (record,) = ring.get_available()
            assert record.payload == big
            assert ring.try_put(KIND_EVENTS, 0, big)
        finally:
            ring.close()

    def test_capacity_bytes_reports_configured_bound(self):
        ring = PipeRing(capacity_bytes=4096)
        try:
            assert ring.capacity_bytes == 4096
        finally:
            ring.close()


class TestMakeRing:
    def test_explicit_kinds(self):
        shm = make_ring("shm", capacity_bytes=4096)
        assert isinstance(shm, ShmRing)
        shm.close(unlink=True)
        pipe = make_ring("pipe")
        assert isinstance(pipe, PipeRing)
        pipe.close()
        auto = make_ring("auto", capacity_bytes=4096)
        assert isinstance(auto, (ShmRing, PipeRing))
        auto.close(unlink=True)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            make_ring("tcp")

    def test_shm_failure_falls_back_to_pipe(self, monkeypatch):
        import repro.serving.transport as transport

        def boom(*args, **kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(transport, "ShmRing", boom)
        ring = make_ring("shm")
        assert isinstance(ring, PipeRing)
        ring.close()


class TestRecord:
    def test_record_is_a_cheap_tuple(self):
        record = Record(KIND_EVENTS, 7, 1.0, b"abc")
        kind, sensor_idx, enqueued_at, payload = record
        assert (kind, sensor_idx, enqueued_at, payload) == (
            KIND_EVENTS,
            7,
            1.0,
            b"abc",
        )
        assert isinstance(record, tuple)
