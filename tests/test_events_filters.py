"""Tests for the event-level noise filters (NN-filt and refractory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.filters import (
    NearestNeighbourFilter,
    RefractoryFilter,
    estimate_noise_rate,
)
from repro.events.types import make_packet


class TestNearestNeighbourFilter:
    def test_isolated_event_rejected(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        packet = make_packet([100], [100], [1000], [1])
        keep = nn_filter.process(packet)
        assert not keep[0]

    def test_spatial_support_accepted(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        packet = make_packet([100, 101], [100, 100], [1000, 1500], [1, 1])
        keep = nn_filter.process(packet)
        assert not keep[0]
        assert keep[1]

    def test_self_support_not_counted(self):
        # The same pixel firing repeatedly should not support itself.
        nn_filter = NearestNeighbourFilter(240, 180)
        packet = make_packet([100, 100, 100], [100, 100, 100], [0, 100, 200], [1, 1, 1])
        keep = nn_filter.process(packet)
        assert not keep.any()

    def test_stale_support_rejected(self):
        nn_filter = NearestNeighbourFilter(240, 180, support_time_us=1000)
        packet = make_packet([100, 101], [100, 100], [0, 5000], [1, 1])
        keep = nn_filter.process(packet)
        assert not keep[1]

    def test_dense_cluster_mostly_kept(self, rng):
        nn_filter = NearestNeighbourFilter(240, 180)
        count = 200
        x = rng.integers(50, 60, count)
        y = rng.integers(50, 60, count)
        t = np.sort(rng.integers(0, 66_000, count))
        packet = make_packet(x, y, t, np.ones(count, dtype=int))
        keep = nn_filter.process(packet)
        assert keep.mean() > 0.8

    def test_uniform_noise_mostly_rejected(self, rng):
        nn_filter = NearestNeighbourFilter(240, 180)
        count = 300
        x = rng.integers(0, 240, count)
        y = rng.integers(0, 180, count)
        t = np.sort(rng.integers(0, 66_000, count))
        packet = make_packet(x, y, t, np.ones(count, dtype=int))
        keep = nn_filter.process(packet)
        assert keep.mean() < 0.3

    def test_state_persists_across_packets(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        first = make_packet([100], [100], [0], [1])
        second = make_packet([101], [100], [100], [1])
        nn_filter.process(first)
        keep = nn_filter.process(second)
        assert keep[0]

    def test_reset_clears_state(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        nn_filter.process(make_packet([100], [100], [0], [1]))
        nn_filter.reset()
        keep = nn_filter.process(make_packet([101], [100], [100], [1]))
        assert not keep[0]

    def test_memory_bits_matches_eq2(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        assert nn_filter.memory_bits == 16 * 240 * 180

    def test_border_events_handled(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        packet = make_packet([0, 0], [0, 1], [0, 100], [1, 1])
        keep = nn_filter.process(packet)
        assert keep[1]

    def test_invalid_neighbourhood_rejected(self):
        with pytest.raises(ValueError):
            NearestNeighbourFilter(240, 180, neighbourhood=4)
        with pytest.raises(ValueError):
            NearestNeighbourFilter(240, 180, support_time_us=0)

    def test_filter_returns_subset(self):
        nn_filter = NearestNeighbourFilter(240, 180)
        packet = make_packet([10, 11, 200], [10, 10, 90], [0, 10, 20], [1, 1, 1])
        kept = nn_filter.filter(packet)
        assert len(kept) == 1
        assert int(kept["x"][0]) == 11


class TestRefractoryFilter:
    def test_rapid_refires_suppressed(self):
        refractory = RefractoryFilter(240, 180, refractory_us=1000)
        packet = make_packet([5, 5, 5], [5, 5, 5], [0, 100, 2000], [1, 1, 1])
        keep = refractory.process(packet)
        assert list(keep) == [True, False, True]

    def test_different_pixels_independent(self):
        refractory = RefractoryFilter(240, 180, refractory_us=1000)
        packet = make_packet([5, 6], [5, 5], [0, 100], [1, 1])
        assert refractory.process(packet).all()

    def test_reset(self):
        refractory = RefractoryFilter(240, 180, refractory_us=10_000)
        refractory.process(make_packet([5], [5], [0], [1]))
        refractory.reset()
        assert refractory.process(make_packet([5], [5], [100], [1]))[0]

    def test_invalid_refractory_rejected(self):
        with pytest.raises(ValueError):
            RefractoryFilter(240, 180, refractory_us=0)

    def test_state_snapshot_round_trip(self):
        # Same contract as the NN filter's snapshot: restoring the captured
        # memory must continue exactly where the original left off.
        refractory = RefractoryFilter(240, 180, refractory_us=10_000)
        refractory.process(make_packet([5, 9], [5, 9], [0, 100], [1, 1]))
        snapshot = refractory.state_snapshot()
        # The snapshot is a copy: mutating the filter doesn't change it.
        refractory.process(make_packet([5], [5], [20_000], [1]))
        restored = RefractoryFilter(240, 180, refractory_us=10_000)
        restored.restore_state(snapshot)
        # Pixel (5, 5) last fired at t=0 in the snapshot: t=5000 suppressed.
        assert not restored.process(make_packet([5], [5], [5000], [1]))[0]
        assert restored.process(make_packet([5], [5], [10_000], [1]))[0]

    def test_restore_state_rejects_wrong_shape(self):
        refractory = RefractoryFilter(240, 180)
        with pytest.raises(ValueError):
            refractory.restore_state(np.zeros((10, 10), dtype=np.int64))


class TestNoiseRateEstimate:
    def test_zero_for_empty(self):
        assert estimate_noise_rate(make_packet([], [], [], []), 240, 180) == 0.0

    def test_rate_with_mask(self):
        packet = make_packet([1, 2, 3, 4], [1, 2, 3, 4], [0, 0, 0, 1_000_000], [1, 1, 1, 1])
        keep = np.array([True, False, False, True])
        rate = estimate_noise_rate(packet, 240, 180, keep)
        assert rate == pytest.approx(2 / (1.0 * 240 * 180))
