"""Observability through the serving layer: scrape, trace, telemetry."""

import threading

import numpy as np
import pytest

from repro.core.config import EbbiotConfig
from repro.events.stream import EventStream
from repro.events.types import make_packet
from repro.obs import (
    PIPELINE_STAGES,
    STAGE_SECONDS_METRIC,
    parse_prometheus_text,
    sample_value,
    validate_chrome_trace,
)
from repro.serving import (
    HubConfig,
    TrackingHub,
    TrackingServer,
    fetch_trace,
    scrape_metrics,
    stream_recording,
)
from repro.serving.telemetry import LatencyWindow, TelemetryRegistry


def _moving_block_stream(seed: int = 0, frames: int = 12) -> EventStream:
    rng = np.random.default_rng(seed)
    xs, ys, ts = [], [], []
    for frame_index in range(frames):
        x0 = 20 + 4 * frame_index
        t = frame_index * 66_000 + 5_000
        for dy in range(8):
            for dx in range(8):
                xs.append(x0 + dx)
                ys.append(60 + dy)
                ts.append(t + int(rng.integers(0, 50_000)))
    return EventStream(make_packet(xs, ys, ts, [1] * len(xs)), 240, 180)


class TestLatencyWindowEdgeCases:
    def test_empty_window(self):
        window = LatencyWindow()
        assert window.count == 0
        assert window.mean_s == 0.0
        assert window.percentile_s(50) == 0.0
        assert window.to_dict() == {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_single_sample_is_every_percentile(self):
        window = LatencyWindow()
        window.record(0.033)
        assert window.count == 1
        assert window.mean_s == pytest.approx(0.033)
        for q in (0, 1, 50, 95, 99, 100):
            assert window.percentile_s(q) == pytest.approx(0.033)

    def test_linear_interpolation_documented_and_used(self):
        """percentile_s interpolates between closest ranks (NumPy default)."""
        window = LatencyWindow()
        samples = [i / 1000.0 for i in range(1, 101)]
        for value in samples:
            window.record(value)
        assert window.percentile_s(50) == pytest.approx(0.0505)
        assert "linear interpolation" in type(window).percentile_s.__doc__


class TestTelemetryConcurrency:
    def test_concurrent_record_and_snapshot(self):
        """Snapshots taken while recorders hammer the registry stay sane."""
        registry = TelemetryRegistry()
        num_threads = 4
        iterations = 500
        snapshots = []
        stop = threading.Event()

        def recorder(index):
            record = registry.sensor(f"cam-{index}")
            for _ in range(iterations):
                record.record_batch(num_events=10)
                record.record_frames(
                    num_frames=1, num_tracks=2, latency_s=0.01, late_events=0
                )

        def snapshotter():
            while not stop.is_set():
                snapshots.append(registry.to_dict())

        threads = [
            threading.Thread(target=recorder, args=(i,)) for i in range(num_threads)
        ]
        reader = threading.Thread(target=snapshotter)
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        reader.join()

        final = registry.to_dict()
        assert final["totals"]["events_received"] == num_threads * iterations * 10
        assert final["totals"]["frames_emitted"] == num_threads * iterations
        assert final["totals"]["track_observations"] == num_threads * iterations * 2
        # Every mid-flight snapshot is internally consistent: totals are
        # the sum of the per-sensor values it shows.
        assert snapshots
        for snapshot in snapshots:
            per_sensor = sum(
                s["events_received"] for s in snapshot["sensors"].values()
            )
            assert snapshot["totals"]["events_received"] == per_sensor

    def test_prometheus_exposition_always_available(self):
        registry = TelemetryRegistry()
        registry.sensor("cam-0").record_batch(num_events=7)
        samples = parse_prometheus_text(registry.to_prometheus_text())
        assert sample_value(
            samples, "repro_sensor_events_received_total", sensor="cam-0"
        ) == 7


class TestLiveScraping:
    def test_metrics_and_trace_answered_without_hello(self):
        """Monitoring commands are exempt from the sensor handshake."""
        with TrackingServer() as server:
            host, port = server.address
            text = scrape_metrics(host, port)
            parse_prometheus_text(text)  # must parse even when empty-ish
            assert fetch_trace(host, port) is None  # uninstrumented hub

    def test_instrumented_hub_serves_stage_metrics_and_trace(self):
        stream = _moving_block_stream(seed=3)
        config = HubConfig(
            instrument=True, pipeline_config=EbbiotConfig(tracker="overlap")
        )
        with TrackingServer(hub_config=config) as server:
            host, port = server.address
            frames, summary = stream_recording(host, port, "cam-0", stream)
            assert summary["num_frames"] > 0
            assert set(summary["stage_seconds"]) == set(PIPELINE_STAGES)

            samples = parse_prometheus_text(scrape_metrics(host, port))
            for stage in PIPELINE_STAGES:
                assert (
                    sample_value(
                        samples, STAGE_SECONDS_METRIC, sensor="cam-0", stage=stage
                    )
                    is not None
                )
            assert sample_value(
                samples, "repro_sensor_events_received_total", sensor="cam-0"
            ) == len(stream)

            trace = fetch_trace(host, port)
            spans = validate_chrome_trace(trace)
            stage_names = {s["name"] for s in spans if s["cat"] == "stage"}
            assert stage_names == set(PIPELINE_STAGES)

    def test_client_request_metrics_and_trace_mid_session(self):
        from repro.serving import SensorClient

        stream = _moving_block_stream(seed=4)
        config = HubConfig(instrument=True)
        with TrackingServer(hub_config=config) as server:
            host, port = server.address
            with SensorClient(host, port, "cam-0") as client:
                client.send_events(stream.events)
                exposition = client.request_metrics()
                parse_prometheus_text(exposition)
                trace = client.request_trace()
                assert trace is not None and "traceEvents" in trace
                client.finish()


class TestInstrumentedHub:
    def test_hub_merges_sensor_stage_costs_into_one_registry(self):
        config = HubConfig(instrument=True, num_workers=2)
        hub = TrackingHub(config)
        hub.start()
        try:
            streams = {
                "cam-0": _moving_block_stream(seed=5),
                "cam-1": _moving_block_stream(seed=6),
            }
            for sensor_id, stream in streams.items():
                hub.register(sensor_id)
                hub.submit(sensor_id, stream.events)
            for sensor_id in streams:
                hub.close_sensor(sensor_id)
            samples = parse_prometheus_text(hub.metrics_text())
            for sensor_id in streams:
                assert (
                    sample_value(
                        samples,
                        STAGE_SECONDS_METRIC,
                        sensor=sensor_id,
                        stage="tracker",
                    )
                    is not None
                )
            trace = hub.chrome_trace()
            assert validate_chrome_trace(trace)
        finally:
            hub.stop()

    def test_uninstrumented_hub_has_no_tracer(self):
        hub = TrackingHub()
        assert hub.chrome_trace() is None
        parse_prometheus_text(hub.metrics_text())

    def test_bad_trace_sample_rejected(self):
        with pytest.raises(ValueError, match="trace_sample_every"):
            HubConfig(trace_sample_every=0)
