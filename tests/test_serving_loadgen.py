"""Tests for the fleet-scale load generator (``python -m repro.serving.loadgen``)."""

from __future__ import annotations

import argparse
import json

import numpy as np
import pytest

from repro.events.types import make_packet
from repro.serving.hub import HubConfig, TrackingHub
from repro.serving.loadgen import (
    HUB_KINDS,
    build_parser,
    build_workload,
    check_slos,
    main,
    make_hub,
    run_load,
    split_batches,
)


def _packet(num_events: int, t_end_us: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return make_packet(
        rng.integers(0, 240, num_events),
        rng.integers(0, 180, num_events),
        np.sort(rng.integers(0, t_end_us, num_events)),
        rng.choice([-1, 1], num_events),
    )


class TestSplitBatches:
    def test_spans_and_order_preserved(self):
        events = _packet(500, t_end_us=100_000)
        batches = split_batches(events, batch_us=10_000)
        assert sum(len(batch) for _, batch in batches) == len(events)
        rejoined = np.concatenate([batch for _, batch in batches])
        assert np.array_equal(rejoined, events)
        for t_start_us, batch in batches:
            assert int(batch["t"][0]) >= t_start_us
            assert int(batch["t"][-1]) < t_start_us + 10_000

    def test_empty_input(self):
        assert split_batches(_packet(0, 1), batch_us=1_000) == []

    def test_sparse_spans_are_skipped(self):
        events = make_packet([1, 2], [1, 2], [0, 90_000], [1, 1])
        batches = split_batches(events, batch_us=1_000)
        assert len(batches) == 2  # no empty batches for the silent gap


class TestBuildWorkload:
    def _args(self, **overrides) -> argparse.Namespace:
        defaults = dict(
            dataset=None, sensors=5, scenes=2, duration=0.3, seed=0, batch_us=5_000
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_scenes_cycle_across_sensors(self):
        workload = build_workload(self._args())
        assert len(workload) == 5
        names = [sensor_id for sensor_id, _ in workload]
        assert len(set(names)) == 5  # unique sensor ids
        # Sensors 0 and 2 replay the same scene -> identical batch lists.
        assert names[0].split("#")[0] == names[2].split("#")[0]
        batches_0 = workload[0][1]
        batches_2 = workload[2][1]
        assert len(batches_0) == len(batches_2)
        assert all(
            np.array_equal(a[1], b[1]) for a, b in zip(batches_0, batches_2)
        )

    def test_missing_dataset_raises(self, tmp_path):
        with pytest.raises((FileNotFoundError, ValueError)):
            build_workload(self._args(dataset=str(tmp_path / "nope")))


class TestRunLoad:
    @pytest.mark.parametrize("kind", HUB_KINDS)
    def test_report_shape_and_drop_invariant(self, kind):
        args = argparse.Namespace(
            dataset=None, sensors=3, scenes=2, duration=0.3, seed=0, batch_us=5_000
        )
        workload = build_workload(args)
        config = HubConfig(num_workers=2)
        with make_hub(kind, config) as hub:
            report = run_load(hub, workload)
        assert report["num_sensors"] == 3
        assert report["drop_invariant"]["ok"] is True
        assert report["drop_invariant"]["refused"] == 0
        assert report["aggregate"]["frames_out"] > 0
        assert report["aggregate"]["frames_per_s"] > 0
        assert report["aggregate"]["latency_ms"]["count"] > 0
        assert report["aggregate"]["latency_ms"]["p99_ms"] >= (
            report["aggregate"]["latency_ms"]["p50_ms"]
        )
        assert len(report["shards"]) == 2
        assert report["migrations"] == 0

    def test_drop_policy_report_counts_shed_batches(self):
        args = argparse.Namespace(
            dataset=None, sensors=2, scenes=1, duration=0.4, seed=0, batch_us=2_000
        )
        workload = build_workload(args)
        config = HubConfig(num_workers=1, queue_capacity=1, backpressure="drop")
        with TrackingHub(config) as hub:
            report = run_load(hub, workload)
        drop = report["drop_invariant"]
        assert drop["ok"] is True
        assert drop["refused"] > 0
        assert drop["accepted"] + drop["refused"] == drop["submitted"]
        assert drop["hub_dropped_batches"] == drop["refused"]


class TestSlos:
    def _report(self, p99=10.0, fps=100.0, refused=0, ok=True):
        return {
            "aggregate": {
                "latency_ms": {"p99_ms": p99},
                "frames_per_s": fps,
            },
            "drop_invariant": {
                "submitted": 100,
                "refused": refused,
                "ok": ok,
            },
        }

    def _args(self, **overrides):
        defaults = dict(
            slo_p99_ms=None, slo_min_fps=None, slo_max_drop_fraction=None
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_all_slos_pass(self):
        assert check_slos(self._report(), self._args()) == []

    def test_each_slo_violation_reported(self):
        args = self._args(
            slo_p99_ms=5.0, slo_min_fps=500.0, slo_max_drop_fraction=0.01
        )
        violations = check_slos(self._report(p99=10.0, fps=100.0, refused=50), args)
        assert len(violations) == 3

    def test_broken_invariant_always_fails(self):
        violations = check_slos(self._report(ok=False), self._args())
        assert len(violations) == 1
        assert "invariant" in violations[0]


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.hub == "process"
        assert args.sensors == 16
        assert args.backpressure == "block"

    def test_end_to_end_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        exit_code = main(
            [
                "--hub",
                "process",
                "--sensors",
                "2",
                "--scenes",
                "1",
                "--duration",
                "0.3",
                "--batch-us",
                "5000",
                "--workers",
                "2",
                "--slo-max-drop-fraction",
                "0.0",
                "--json",
                str(out),
            ]
        )
        assert exit_code == 0
        report = json.loads(out.read_text())
        assert report["slo"]["ok"] is True
        assert report["drop_invariant"]["ok"] is True
        assert report["config"]["hub"] == "process"
        assert "events/s" in capsys.readouterr().out

    def test_slo_violation_sets_exit_code(self):
        exit_code = main(
            [
                "--hub",
                "thread",
                "--sensors",
                "1",
                "--scenes",
                "1",
                "--duration",
                "0.3",
                "--slo-min-fps",
                "1e9",
            ]
        )
        assert exit_code == 1

    def test_bad_arguments_exit_2(self):
        assert main(["--sensors", "0"]) == 2
        assert main(["--speed", "-1"]) == 2
        assert main(["--scenes", "0"]) == 2
        assert main(["--tracker", "made-up"]) == 2
